// Ablation: the kernel-fusion pass (Section III-B) on 3mm's independent
// GEMM pair. Reports crossbar writes, runtime-call counts, energy and time
// with fusion enabled vs disabled.
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  auto workload = tdo::pb::make_workload("3mm", tdo::pb::Preset::kPaper);
  if (!workload.is_ok()) return 1;

  TextTable table("Ablation - kernel fusion (3mm, E=A*B and F=C*D fusable)");
  table.set_header({"Config", "CIM weights written", "Energy", "Runtime",
                    "Correct"});
  for (const bool fusion : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.compile.enable_fusion = fusion;
    const auto report = tdo::pb::run_cim(*workload, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    table.add_row({fusion ? "fusion ON (batched)" : "fusion OFF",
                   std::to_string(report->cim_writes),
                   report->total_energy.to_string(),
                   report->runtime.to_string(),
                   report->correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "3mm's fusable pair shares no operand, so fusion saves\n"
               "runtime-call overhead (one batched submit) rather than\n"
               "writes; the shared-input write saving is shown by\n"
               "bench/fig5_endurance on Listing 2.\n";
  return 0;
}
