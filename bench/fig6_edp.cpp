// Reproduces Figure 6 (right): energy-delay-product improvement and runtime
// improvement of host+CIM over the host for every PolyBench kernel, plus the
// average bars.
//
// Expected shape (paper): EDP improvements up to ~612x for GEMM-like kernels
// (the energy and runtime wins multiply), negative (i.e. < 1x) for the
// GEMV-like kernels, which are both slower and less efficient on the CIM
// device because writes dominate.
#include <cmath>
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  using tdo::support::TextTable;
  TextTable table("Figure 6 (right) - EDP and runtime improvement");
  table.set_header({"Kernel", "Host EDP (J*s)", "CIM EDP (J*s)",
                    "EDP improvement", "Runtime improvement"});

  TextTable stream_table("Command-stream behaviour per kernel");
  stream_table.set_header({"Kernel", "Commands", "CPU fallbacks",
                           "Peak in-flight", "Overlap ticks", "Copies",
                           "Copy KiB", "Overlapped KiB", "SG segs",
                           "Contended ticks", "Host memcpys"});

  double log_edp = 0.0;
  double log_rt = 0.0;
  int count = 0;
  double best_edp = 0.0;
  std::string best_kernel;

  for (const std::string& name : tdo::pb::kernel_names()) {
    auto workload = tdo::pb::make_workload(name, tdo::pb::Preset::kPaper);
    if (!workload.is_ok()) continue;
    const auto host = tdo::pb::run_host(*workload);
    const auto cim = tdo::pb::run_cim(*workload);
    if (!host.is_ok() || !cim.is_ok()) {
      std::cerr << name << " failed: " << host.status() << " / "
                << cim.status() << "\n";
      return 1;
    }
    const double edp_improvement = host->edp() / cim->edp();
    const double rt_improvement =
        host->runtime / cim->runtime;
    log_edp += std::log(edp_improvement);
    log_rt += std::log(rt_improvement);
    ++count;
    if (edp_improvement > best_edp) {
      best_edp = edp_improvement;
      best_kernel = name;
    }
    char host_edp[32];
    char cim_edp[32];
    std::snprintf(host_edp, sizeof host_edp, "%.3e", host->edp());
    std::snprintf(cim_edp, sizeof cim_edp, "%.3e", cim->edp());
    table.add_row({name, host_edp, cim_edp,
                   TextTable::fmt_ratio(edp_improvement),
                   TextTable::fmt_ratio(rt_improvement)});
    stream_table.add_row({name, std::to_string(cim->stream_commands),
                          std::to_string(cim->stream_fallbacks),
                          std::to_string(cim->stream_occupancy),
                          std::to_string(cim->overlap_ticks),
                          std::to_string(cim->copies_enqueued),
                          std::to_string(cim->copy_bytes / 1024),
                          std::to_string(cim->overlapped_copy_bytes / 1024),
                          std::to_string(cim->copy_segments),
                          std::to_string(cim->copy_contended_ticks),
                          std::to_string(cim->host_copies)});
  }

  table.add_row({"Average (geomean)", "", "",
                 TextTable::fmt_ratio(std::exp(log_edp / count)),
                 TextTable::fmt_ratio(std::exp(log_rt / count))});
  table.print(std::cout);
  std::cout << "Best EDP improvement: " << TextTable::fmt_ratio(best_edp)
            << " on " << best_kernel
            << " (paper: up to 612x on GEMM-like kernels; GEMV-like lose).\n\n";
  stream_table.print(std::cout);
  std::cout << "Stream counters track the async offload path over time: more"
               " overlap ticks and higher in-flight peaks mean better"
               " submit/compute pipelining; fallbacks are commands the"
               " dynamic policy kept on the host. Copies are host<->device"
               " transfers riding the stream as DMA commands; overlapped KiB"
               " is the share of that traffic hidden under engine compute"
               " (exact: the engine's own weight/vector DMA occupancy of the"
               " copy channel is subtracted). SG segs counts scatter-gather"
               " segments, contended ticks the time copies waited on channel"
               " contention, host memcpys the blocking fallbacks left.\n";
  return 0;
}
