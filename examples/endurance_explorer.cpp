// Endurance explorer: how the fusion "smart mapping" and the crossbar
// geometry affect PCM lifetime (the design space behind Figure 5).
//
// Runs the Listing-2 double GEMM with fusion on/off across several matrix
// sizes and reports crossbar wear plus Eq. 1 lifetime projections.
#include <cstdio>
#include <iostream>

#include "pcm/endurance.hpp"
#include "polybench/harness.hpp"
#include "support/table.hpp"

namespace {

tdo::pb::Workload listing2(std::int64_t n) {
  char source[1024];
  std::snprintf(source, sizeof source, R"(
kernel listing2(N = %lld) {
  array float A[N][N];
  array float B[N][N];
  array float E[N][N];
  array float C[N][N];
  array float D[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      D[i][j] = 0.0;
      for (k = 0; k < N; k++)
        D[i][j] += A[i][k] * E[k][j];
    }
}
)",
                static_cast<long long>(n));
  tdo::pb::Workload w;
  w.name = "listing2";
  w.source = source;
  auto fill = [n](int salt) {
    std::vector<float> m(static_cast<std::size_t>(n * n));
    for (std::int64_t i = 0; i < n * n; ++i) {
      m[static_cast<std::size_t>(i)] =
          static_cast<float>(((i * salt) % 9 - 4) / 4.0);
    }
    return m;
  };
  w.inputs["A"] = fill(3);
  w.inputs["B"] = fill(5);
  w.inputs["E"] = fill(7);
  w.inputs["C"] = std::vector<float>(static_cast<std::size_t>(n * n), 0.0f);
  w.inputs["D"] = std::vector<float>(static_cast<std::size_t>(n * n), 0.0f);
  w.expected["C"] = w.inputs["C"];
  w.expected["D"] = w.inputs["D"];
  w.outputs = {};
  w.tolerance = 1e9;
  return w;
}

}  // namespace

int main() {
  using tdo::support::TextTable;
  TextTable table("Endurance explorer - Listing 2, fusion on/off");
  table.set_header({"N", "Mapping", "Weights written", "Exec time",
                    "Lifetime @20M writes (years, S=512KB)"});

  for (const std::int64_t n : {64, 128, 256}) {
    const auto workload = listing2(n);
    for (const bool fusion : {false, true}) {
      tdo::pb::HarnessOptions options;
      options.compile.enable_fusion = fusion;
      const auto report = tdo::pb::run_cim(workload, options);
      if (!report.is_ok()) {
        std::cerr << report.status() << "\n";
        return 1;
      }
      const tdo::pcm::WriteTraffic traffic{report->cim_writes, report->runtime};
      const double years = tdo::pcm::system_lifetime_years(
          20'000'000ull, 512ull * 1024, traffic);
      table.add_row({std::to_string(n), fusion ? "smart (fused)" : "naive",
                     std::to_string(report->cim_writes),
                     report->runtime.to_string(), TextTable::fmt(years, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "The smart mapping halves the weights written at every size "
               "(shared A programmed once).\n";
  return 0;
}
