// Using the CIM runtime library directly, cuBLAS-style (paper Section III:
// "The library has been designed to be used directly by the application
// programmer"). This is Listing 1's generated code, written by hand against
// the polly_cim* C API.
#include <cstdint>
#include <iostream>
#include <vector>

#include "cim/accelerator.hpp"
#include "runtime/cim_api.hpp"
#include "sim/system.hpp"

int main() {
  using namespace tdo::rt::api;  // the polly_cim* C facade

  // Platform bring-up (in a real deployment this is the OS + driver).
  tdo::sim::System system;
  tdo::cim::Accelerator accel{{}, system};
  tdo::rt::CimRuntime runtime{{}, system, accel};
  const RuntimeBinding binding{runtime};

  constexpr std::uint64_t kM = 96, kN = 80, kK = 112;
  const float alpha = 1.0f, beta = 0.0f;

  // --- Listing 1, hand-written ---
  if (polly_cimInit(0) != kCimSuccess) return 1;

  std::uint64_t cim_a = 0, cim_b = 0, cim_c = 0;
  if (polly_cimMalloc(&cim_a, kM * kK * 4) != kCimSuccess) return 1;
  if (polly_cimMalloc(&cim_b, kK * kN * 4) != kCimSuccess) return 1;
  if (polly_cimMalloc(&cim_c, kM * kN * 4) != kCimSuccess) return 1;

  // Fill device buffers (a real app would polly_cimHostToDev from its own
  // arrays; here we write the device buffers through the simulated memory).
  std::vector<float> a(kM * kK), b(kK * kN);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = float(i % 11) / 11.0f - 0.5f;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = float(i % 7) / 7.0f - 0.5f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto pa = system.mmu().translate(cim_a + i * 4);
    system.memory().write_scalar<float>(*pa, a[i]);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto pa = system.mmu().translate(cim_b + i * 4);
    system.memory().write_scalar<float>(*pa, b[i]);
  }

  if (polly_cimBlasSGemm(false, false, kM, kN, kK, &alpha, cim_a, kK, cim_b,
                         kN, &beta, cim_c, kN) != kCimSuccess) {
    std::cerr << "SGEMM failed\n";
    return 1;
  }

  // Spot-check one output element against a host-computed value.
  double expected = 0.0;
  for (std::uint64_t k = 0; k < kK; ++k) expected += a[k] * b[k * kN];
  const auto pa_c = system.mmu().translate(cim_c);
  const float got = system.memory().read_scalar<float>(*pa_c);
  std::cout << "C[0][0] = " << got << " (reference " << expected << ")\n";

  const auto report = accel.report();
  std::cout << "accelerator jobs        : " << report.jobs << "\n";
  std::cout << "GEMV operations         : " << report.gemv_ops << "\n";
  std::cout << "8-bit MACs              : " << report.mac8_ops << "\n";
  std::cout << "crossbar weights written: " << report.weight_writes8 << "\n";
  std::cout << "accelerator energy      : " << report.total_energy << "\n";
  std::cout << "wall time               : " << system.global_time() << "\n";

  (void)polly_cimFree(cim_c);
  (void)polly_cimFree(cim_b);
  (void)polly_cimFree(cim_a);
  return 0;
}
