// Quickstart: compile a plain C GEMM with TDO-CIM and run it on the
// simulated Arm-A7 + CIM platform.
//
// Shows the full flow of the paper's Figure 4: C text -> front-end -> Loop
// Tactics detection -> runtime-call substitution (Listing 1) -> execution on
// the simulated host + accelerator, with before/after code and energy.
#include <iostream>

#include "cim/accelerator.hpp"
#include "core/pipeline.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/system.hpp"

int main() {
  // 1. A legacy sequential kernel, written in plain C.
  const std::string source = R"(
kernel gemm(M = 64, N = 64, K = 64, alpha = 1.5, beta = 1.2) {
  array float A[M][K];
  array float B[K][N];
  array float C[M][N];
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      C[i][j] = beta * C[i][j];
      for (k = 0; k < K; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
    }
}
)";

  // 2. Front-end: C text -> affine IR.
  auto fn = tdo::frontend::parse_kernel(source);
  if (!fn.is_ok()) {
    std::cerr << "parse error: " << fn.status() << "\n";
    return 1;
  }
  std::cout << "=== Input kernel ===\n" << tdo::ir::to_source(*fn) << "\n";

  // 3. Mid-level optimizer: schedule tree + Loop Tactics passes.
  const tdo::core::CompileResult compiled = tdo::core::compile(*fn);
  std::cout << "=== Schedule tree (Polly view) ===\n"
            << compiled.schedule_tree_dump << "\n";
  std::cout << "=== Detected kernels ===\n";
  for (const auto& report : compiled.reports) {
    // Every detected kernel becomes a device call; the stream's dynamic
    // dispatch decides host-vs-device per command at runtime.
    std::cout << "  " << report.description
              << "  [MACs/write=" << report.macs_per_write
              << (report.offloaded ? ", device call]" : ", host]") << "\n";
  }
  std::cout << "\n=== Generated program (Listing 1 style) ===\n"
            << compiled.cim_program.to_source() << "\n";

  // 4. Back-end: execute on the simulated platform.
  tdo::sim::System system;
  tdo::cim::Accelerator accel{{}, system};
  tdo::rt::CimRuntime runtime{{}, system, accel};
  tdo::exec::Interpreter interp{system, &runtime};

  if (auto prepared = interp.prepare(compiled.cim_program); !prepared.is_ok()) {
    std::cerr << "prepare failed: " << prepared << "\n";
    return 1;
  }
  // Deterministic input data.
  std::vector<float> a(64 * 64), b(64 * 64), c(64 * 64);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(static_cast<int>(i % 13) - 6) / 6.0f;
    b[i] = static_cast<float>(static_cast<int>(i % 7) - 3) / 3.0f;
    c[i] = static_cast<float>(static_cast<int>(i % 5) - 2) / 2.0f;
  }
  (void)interp.set_array("A", a);
  (void)interp.set_array("B", b);
  (void)interp.set_array("C", c);

  if (auto run = interp.run(compiled.cim_program); !run.is_ok()) {
    std::cerr << "run failed: " << run << "\n";
    return 1;
  }

  const auto snap = system.snapshot();
  std::cout << "=== Execution summary ===\n";
  std::cout << "host instructions : " << snap.counter_or("host.instructions")
            << "\n";
  std::cout << "host energy       : " << snap.energy_or("host.energy") << "\n";
  std::cout << "CIM write energy  : " << snap.energy_or("cim.energy.write")
            << "\n";
  std::cout << "CIM compute energy: " << snap.energy_or("cim.energy.compute")
            << "\n";
  std::cout << "MACs per cim-write: " << accel.report().macs_per_cim_write()
            << "\n";
  std::cout << "total time        : " << system.global_time() << "\n";
  const auto result = interp.get_array("C");
  std::cout << "C[0..3]           : " << (*result)[0] << " " << (*result)[1]
            << " " << (*result)[2] << " " << (*result)[3] << "\n";
  return 0;
}
