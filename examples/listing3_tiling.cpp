// Listing 3 demo: the endurance-aware tiling + interchange transformation.
//
// Shows the tiled/interchanged loop nest the compiler derives for an
// oversized GEMM (Listing 3 of the paper) and compares the crossbar write
// counts of the reuse-friendly order against the naive order.
#include <iostream>

#include "core/pipeline.hpp"
#include "core/tiling.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "polybench/harness.hpp"

int main() {
  const std::string source = R"(
kernel big_gemm(SIZE = 512) {
  array float A[SIZE][SIZE];
  array float B[SIZE][SIZE];
  array float C[SIZE][SIZE];
  for (i = 0; i < SIZE; i++)
    for (j = 0; j < SIZE; j++)
      for (k = 0; k < SIZE; k++)
        C[i][j] += A[i][k] * B[k][j];
}
)";
  auto fn = tdo::frontend::parse_kernel(source);
  if (!fn.is_ok()) {
    std::cerr << fn.status() << "\n";
    return 1;
  }

  const auto detection = tdo::core::detect_kernels(*fn);
  if (detection.kernels.empty() || !detection.kernels[0].is_gemm()) {
    std::cerr << "GEMM not detected\n";
    return 1;
  }
  const auto& gemm = detection.kernels[0].gemm();
  const auto plan = tdo::core::plan_gemm_tiling(
      gemm, 256, 256, tdo::cim::StationaryOperand::kA);
  std::cout << "Crossbar: 256x256; operand A is " << gemm.m << "x" << gemm.k
            << " -> tiling " << (plan.needed ? "required" : "not required")
            << " (tile_k=" << plan.tile_k << ", tile_cols=" << plan.tile_cols
            << ")\n\n";

  const auto tiled = tdo::core::make_tiled_view(*fn, gemm, plan);
  std::cout << "=== Listing 3: tiled + interchanged loop nest ===\n"
            << tdo::ir::to_source(tiled) << "\n";

  // Compare crossbar writes: reuse-friendly (interchange) vs naive order.
  tdo::pb::Workload w;
  w.name = "big_gemm";
  w.source = source;
  const std::size_t nn = 512 * 512;
  w.inputs["A"] = std::vector<float>(nn, 0.25f);
  w.inputs["B"] = std::vector<float>(nn, -0.5f);
  w.inputs["C"] = std::vector<float>(nn, 0.0f);
  w.expected["C"] = std::vector<float>(nn, 0.0f);
  w.outputs = {};
  w.tolerance = 1e9;

  for (const bool interchange : {true, false}) {
    tdo::pb::HarnessOptions options;
    options.compile.enable_tiling = interchange;
    const auto report = tdo::pb::run_cim(w, options);
    if (!report.is_ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    std::cout << (interchange ? "reuse-friendly (Listing 3) order: "
                              : "naive order (no interchange):    ")
              << report->cim_writes << " weights written, "
              << report->runtime.to_string() << "\n";
  }
  std::cout << "\nThe interchange programs each stationary A tile exactly "
               "once; the naive order reprograms it per column chunk.\n";
  return 0;
}
