// Transparent offloading of a legacy application (the paper's headline
// claim): the whole PolyBench 2mm program compiles unchanged; TDO-CIM
// detects both GEMM kernels, keeps the dependent pair unfused, and offloads
// each — no user annotation anywhere.
//
// Compare the "-O3" and "-O3 -enable-loop-tactics" configurations the way
// Section IV does, on the same workload.
#include <iostream>

#include "polybench/harness.hpp"
#include "support/table.hpp"

int main() {
  auto workload = tdo::pb::make_workload("2mm", tdo::pb::Preset::kTest);
  if (!workload.is_ok()) {
    std::cerr << workload.status() << "\n";
    return 1;
  }

  std::cout << "Legacy source (compiled unchanged):\n"
            << workload->source << "\n";

  const auto host = tdo::pb::run_host(*workload);      // clang -O3
  const auto cim = tdo::pb::run_cim(*workload);        // -enable-loop-tactics
  if (!host.is_ok() || !cim.is_ok()) {
    std::cerr << "run failed: " << host.status() << " / " << cim.status()
              << "\n";
    return 1;
  }

  tdo::support::TextTable table("2mm: -O3 vs -O3 -enable-loop-tactics");
  table.set_header({"Metric", "Host (Arm-A7)", "Host + CIM"});
  table.add_row({"energy", host->total_energy.to_string(),
                 cim->total_energy.to_string()});
  table.add_row({"runtime", host->runtime.to_string(), cim->runtime.to_string()});
  table.add_row({"host instructions", std::to_string(host->host_instructions),
                 std::to_string(cim->host_instructions)});
  table.add_row({"result correct", host->correct ? "yes" : "no",
                 cim->correct ? "yes (within quantization bound)" : "NO"});
  table.add_row({"max |error|",
                 tdo::support::TextTable::fmt(host->max_abs_error, 6),
                 tdo::support::TextTable::fmt(cim->max_abs_error, 4)});
  table.print(std::cout);

  std::cout << "Energy improvement: "
            << tdo::support::TextTable::fmt_ratio(host->total_energy /
                                                  cim->total_energy)
            << ", EDP improvement: "
            << tdo::support::TextTable::fmt_ratio(host->edp() / cim->edp())
            << "\n";
  return 0;
}
