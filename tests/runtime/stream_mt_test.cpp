// Multi-threaded CimStream submission (satellite stress layer): N real OS
// threads push fully-prepared compute commands and DMA copies through
// enqueue_from_thread, the driver thread pumps and synchronizes, and the
// memory state must match a single-threaded reference run bit for bit.
// Rides the TDO_FUZZ_SEED CI loop like the other *Fuzz* tests.
#include "runtime/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cim/context_regs.hpp"
#include "runtime/cim_blas.hpp"
#include "support/fixed_point.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using tdo::testing::Platform;
using tdo::testing::random_matrix;
using tdo::testing::ref_gemm;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

[[nodiscard]] double max_abs_of(const std::vector<float>& data) {
  double out = 0.0;
  for (const float v : data) out = std::max(out, std::abs(static_cast<double>(v)));
  return out;
}

/// A fully-prepared single-tile GEMM image, the register file the runtime's
/// private make_job_image would produce (minus residency placement).
[[nodiscard]] cim::ContextRegs gemm_image(std::uint64_t m, std::uint64_t n,
                                          std::uint64_t k, sim::PhysAddr pa_a,
                                          sim::PhysAddr pa_b,
                                          sim::PhysAddr pa_c, double scale_a,
                                          double scale_b) {
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode,
              static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, m);
  image.write(cim::Reg::kN, n);
  image.write(cim::Reg::kK, k);
  image.write(cim::Reg::kPaA, pa_a);
  image.write(cim::Reg::kPaB, pa_b);
  image.write(cim::Reg::kPaC, pa_c);
  image.write(cim::Reg::kLda, k);
  image.write(cim::Reg::kLdb, n);
  image.write(cim::Reg::kLdc, n);
  image.write_f32(cim::Reg::kAlpha, 1.0f);
  image.write_f32(cim::Reg::kBeta, 0.0f);
  image.write_f64(cim::Reg::kScaleA,
                  support::QuantScale::for_max_abs(scale_a).scale);
  image.write_f64(cim::Reg::kScaleB,
                  support::QuantScale::for_max_abs(scale_b).scale);
  image.write(cim::Reg::kStationary,
              static_cast<std::uint64_t>(cim::StationaryOperand::kB));
  image.write(cim::Reg::kTileRow, 0);
  image.write(cim::Reg::kFlags, cim::JobFlags::kDoubleBuffering);
  return image;
}

TEST(StreamMtFuzz, ThreadedComputeSubmissionMatchesSingleThreadReference) {
  const std::uint64_t seed = fuzz_seed();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobs = 24;
  constexpr std::uint64_t m = 8, n = 32, k = 32;

  // Each job gets its own operands and output, so results are independent
  // of dispatch order and device placement (round-robin differs between the
  // threaded and reference runs; the quantized math does not).
  const auto run = [&](bool threaded) -> std::vector<std::vector<float>> {
    Platform p{{}, {}, {}, 2};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const auto translate = [&](sim::VirtAddr va) {
      auto pa = p.system().mmu().translate(va);
      EXPECT_TRUE(pa.is_ok());
      return *pa;
    };
    std::vector<CimStream::Command> commands;
    std::vector<sim::VirtAddr> outputs;
    std::vector<std::size_t> job_seed;
    for (std::size_t j = 0; j < kJobs; ++j) {
      const std::uint64_t s = seed + 10 * j;
      const auto a = random_matrix(m * k, 1.0, s);
      const auto b = random_matrix(k * n, 1.0, s + 1);
      const auto va_a = p.upload(a);
      const auto va_b = p.upload(b);
      const auto va_c = p.device_zeros(m * n);
      CimStream::Command command;
      command.kind = CimStream::Command::Kind::kCompute;
      command.image = gemm_image(m, n, k, translate(va_a), translate(va_b),
                                 translate(va_c), max_abs_of(a),
                                 max_abs_of(b));
      command.macs = m * n * k;
      command.cim_writes = k * n;
      commands.push_back(command);
      outputs.push_back(va_c);
      job_seed.push_back(s);
    }

    CimStream& stream = p.runtime().stream();
    if (threaded) {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t j = t; j < kJobs; j += kThreads) {
            const auto status = stream.enqueue_from_thread(commands[j]);
            ASSERT_TRUE(status.is_ok()) << status.to_string();
          }
        });
      }
      for (auto& thread : threads) thread.join();
      EXPECT_EQ(stream.ring_pending(), kJobs);
    } else {
      for (const auto& command : commands) {
        EXPECT_TRUE(stream.enqueue(command).is_ok());
      }
    }
    EXPECT_TRUE(stream.synchronize().is_ok());

    const StreamReport report = stream.report();
    EXPECT_EQ(report.enqueued, kJobs);
    EXPECT_EQ(report.offloaded, kJobs);
    EXPECT_EQ(report.cpu_fallbacks, 0u);
    EXPECT_EQ(report.ring_submitted, threaded ? kJobs : 0u);
    EXPECT_EQ(stream.ring_pending(), 0u);
    EXPECT_TRUE(stream.idle());

    std::vector<std::vector<float>> results;
    for (std::size_t j = 0; j < kJobs; ++j) {
      results.push_back(p.read_floats(outputs[j], m * n));
      // Sanity: each job is a real GEMM within the quantization bound.
      const auto a = random_matrix(m * k, 1.0, job_seed[j]);
      const auto b = random_matrix(k * n, 1.0, job_seed[j] + 1);
      std::vector<float> expected(m * n, 0.0f);
      ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, expected, n);
      const double bound =
          support::dot_quant_error_bound(1.0, 1.0, k) + 1e-3;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(results[j][i], expected[i], bound)
            << "job " << j << " element " << i;
      }
    }
    return results;
  };

  const auto threaded = run(true);
  const auto reference = run(false);
  ASSERT_EQ(threaded.size(), reference.size());
  for (std::size_t j = 0; j < kJobs; ++j) {
    for (std::size_t i = 0; i < threaded[j].size(); ++i) {
      ASSERT_EQ(threaded[j][i], reference[j][i])
          << "job " << j << " element " << i;
    }
  }
}

TEST(StreamMtFuzz, ThreadedCopiesLandExactly) {
  // DMA copy commands ride the same submission ring: four threads each move
  // a distinct seeded buffer device-to-device; after the pump and drain all
  // destinations must hold their source bytes.
  const std::uint64_t seed = fuzz_seed();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCopies = 16;
  constexpr std::size_t kFloats = 512;

  Platform p{{}, {}, {}, 2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto translate = [&](sim::VirtAddr va) {
    auto pa = p.system().mmu().translate(va);
    EXPECT_TRUE(pa.is_ok());
    return *pa;
  };
  std::vector<CimStream::Command> commands;
  std::vector<sim::VirtAddr> sources, destinations;
  for (std::size_t c = 0; c < kCopies; ++c) {
    const auto src = p.upload(random_matrix(kFloats, 1.0, seed + 100 + c));
    const auto dst = p.device_zeros(kFloats);
    CimStream::Command command;
    command.kind = CimStream::Command::Kind::kCopy;
    command.copy.dir = CopyDesc::Dir::kHostToDev;
    command.copy.segments.push_back(CopySeg{
        Rect::linear(translate(src), kFloats * sizeof(float)),
        Rect::linear(translate(dst), kFloats * sizeof(float))});
    commands.push_back(command);
    sources.push_back(src);
    destinations.push_back(dst);
  }

  CimStream& stream = p.runtime().stream();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t c = t; c < kCopies; c += kThreads) {
        const auto status = stream.enqueue_from_thread(commands[c]);
        ASSERT_TRUE(status.is_ok()) << status.to_string();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stream.ring_pending(), kCopies);
  ASSERT_TRUE(stream.synchronize().is_ok());

  const StreamReport report = stream.report();
  EXPECT_EQ(report.copies_enqueued, kCopies);
  EXPECT_EQ(report.copy_bytes, kCopies * kFloats * sizeof(float));
  EXPECT_EQ(report.ring_submitted, kCopies);
  for (std::size_t c = 0; c < kCopies; ++c) {
    const auto expected = p.read_floats(sources[c], kFloats);
    const auto got = p.read_floats(destinations[c], kFloats);
    for (std::size_t i = 0; i < kFloats; ++i) {
      ASSERT_EQ(got[i], expected[i]) << "copy " << c << " element " << i;
    }
  }
}

}  // namespace
}  // namespace tdo::rt
