// Randomized differential tests for the scatter-gather transfer engine.
//
// Two layers of oracle checking, both driven by one seed (TDO_FUZZ_SEED in
// the environment overrides the default, which is what CI's seeded-fuzz job
// step does):
//
//  1. Geometry: Rect::overlaps and RectTracker verdicts are checked against
//     a naive per-byte oracle that materializes every byte of one rectangle
//     and probes the other — the analytic row-intersection math must agree
//     with brute force on every random shape, including degenerate ones.
//
//  2. Copy plans: ~200 random scatter-gather copy plans (random MMU
//     fragmentation, random segment counts/sizes, pitched sub-matrix views,
//     interleaved with gemm launches) executed on an async-copy runtime and
//     replayed on a second runtime pinned to the synchronous host-memcpy
//     path. Every buffer the two runtimes produce must be bit-identical —
//     the DMA chains, hazard ordering, and contention model may change the
//     schedule, never the bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "runtime/residency.hpp"
#include "runtime/stream.hpp"
#include "runtime/xfer.hpp"
#include "support/fixed_point.hpp"
#include "support/rng.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

// --- layer 1: geometry vs per-byte oracle ---

std::set<std::uint64_t> rect_bytes(const Rect& r) {
  std::set<std::uint64_t> bytes;
  if (r.empty()) return bytes;
  for (std::uint64_t row = 0; row < r.rows; ++row) {
    for (std::uint64_t b = 0; b < r.width; ++b) {
      bytes.insert(r.base + row * r.pitch + b);
    }
  }
  return bytes;
}

bool oracle_overlaps(const Rect& a, const Rect& b) {
  const auto bytes_a = rect_bytes(a);
  for (const std::uint64_t byte : rect_bytes(b)) {
    if (bytes_a.contains(byte)) return true;
  }
  return false;
}

Rect random_rect(support::Rng& rng) {
  Rect r;
  r.base = static_cast<sim::PhysAddr>(rng.uniform_int(0, 512));
  r.width = static_cast<std::uint64_t>(rng.uniform_int(0, 48));
  // Bias toward pitches near the width so rows interleave interestingly;
  // allow pitch < width too (overlapping rows) — the oracle doesn't care.
  r.pitch = static_cast<std::uint64_t>(rng.uniform_int(0, 96));
  r.rows = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
  return r;
}

TEST(XferFuzzTest, RectOverlapMatchesPerByteOracle) {
  support::Rng rng{fuzz_seed()};
  for (int iter = 0; iter < 400; ++iter) {
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    const bool want = oracle_overlaps(a, b);
    EXPECT_EQ(a.overlaps(b), want)
        << "iter " << iter << ": a={" << a.base << "," << a.pitch << ","
        << a.width << "," << a.rows << "} b={" << b.base << "," << b.pitch
        << "," << b.width << "," << b.rows << "}";
    EXPECT_EQ(b.overlaps(a), want) << "asymmetric verdict at iter " << iter;
  }
}

TEST(XferFuzzTest, RectTrackerVerdictsMatchPerByteOracle) {
  support::Rng rng{fuzz_seed() ^ 0x9e3779b97f4a7c15ull};
  for (int iter = 0; iter < 200; ++iter) {
    RectTracker tracker;
    std::vector<Rect> reads;
    std::vector<Rect> writes;
    const int n = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < n; ++i) {
      const Rect r = random_rect(rng);
      if (rng.chance(0.5)) {
        tracker.note_read(r);
        if (!r.empty()) reads.push_back(r);
      } else {
        tracker.note_write(r);
        if (!r.empty()) writes.push_back(r);
      }
    }
    const Rect probe = random_rect(rng);
    bool want_reads = false;
    bool want_writes = false;
    for (const Rect& r : reads) want_reads = want_reads || oracle_overlaps(r, probe);
    for (const Rect& r : writes) want_writes = want_writes || oracle_overlaps(r, probe);
    EXPECT_EQ(tracker.reads_overlap(probe), want_reads) << "iter " << iter;
    EXPECT_EQ(tracker.writes_overlap(probe), want_writes) << "iter " << iter;
    EXPECT_EQ(!tracker.writes_overlapping(probe).empty(), want_writes)
        << "iter " << iter;
  }
}

// --- layer 2: random copy plans, async vs synchronous host path ---

/// One runtime under test plus the state the plans accumulate on it.
struct Rig {
  explicit Rig(bool async_copies)
      : platform{[&] {
          RuntimeConfig config;
          config.stream.depth = 4;
          config.xfer.async_copies = async_copies;
          config.xfer.min_async_bytes = 256;  // tiny plans still ride
          return config;
        }()} {
    EXPECT_TRUE(platform.runtime().init(0).is_ok());
    // Persistent GEMM operands the interleaved launches reuse.
    const auto a = testing::random_matrix(kGemmDim * kGemmDim, 1.0, 7);
    const auto b = testing::random_matrix(kGemmDim * kGemmDim, 1.0, 8);
    gemm_a = platform.upload(a);
    gemm_b = platform.upload(b);
    gemm_c = platform.device_zeros(kGemmDim * kGemmDim);
  }

  static constexpr std::size_t kGemmDim = 24;
  Platform platform;
  sim::VirtAddr gemm_a = 0;
  sim::VirtAddr gemm_b = 0;
  sim::VirtAddr gemm_c = 0;
  std::vector<sim::VirtAddr> host_pages;  // fragmentation pool
};

using testing::read_floats_scattered;
using testing::write_floats_scattered;

/// One randomly drawn copy plan. The description is drawn once and applied
/// to both rigs so their call sequences are identical.
struct Plan {
  std::uint64_t floats = 0;        // payload element count
  std::vector<float> payload;
  int frag_allocs = 0;             // fragmentation churn before the alloc
  bool release_evens = false;
  bool gemm_before = false;        // interleave a launch before the copy
  bool gemm_between = false;       // ... and between the two copies
  bool round_trip = false;         // dev_to_host back into scattered memory
  bool as_view = false;            // pitched sub-matrix view instead of flat
  std::uint64_t view_cols = 0;     // elements per view row
  std::uint64_t view_rows = 0;
  std::uint64_t view_stride = 0;   // elements between row starts (>= cols)

  /// Element indices (into the payload/buffer) the plan's copy moves.
  [[nodiscard]] std::vector<std::uint64_t> moved_indices() const {
    std::vector<std::uint64_t> idx;
    if (!as_view) {
      idx.resize(floats);
      for (std::uint64_t i = 0; i < floats; ++i) idx[i] = i;
      return idx;
    }
    idx.reserve(view_rows * view_cols);
    for (std::uint64_t r = 0; r < view_rows; ++r) {
      for (std::uint64_t c = 0; c < view_cols; ++c) {
        idx.push_back(r * view_stride + c);
      }
    }
    return idx;
  }
};

Plan draw_plan(support::Rng& rng, std::uint64_t iter) {
  Plan plan;
  const std::uint64_t pages = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
  const std::uint64_t tail = static_cast<std::uint64_t>(rng.uniform_int(0, 255)) * 4;
  plan.floats = (pages * sim::kPageSize + tail) / 4;
  plan.payload = testing::random_matrix(plan.floats, 9.0, 1000 + iter);
  plan.frag_allocs = static_cast<int>(rng.uniform_int(0, 6));
  plan.release_evens = rng.chance(0.7);
  plan.gemm_before = rng.chance(0.4);
  plan.gemm_between = rng.chance(0.3);
  plan.round_trip = rng.chance(0.6);
  plan.as_view = rng.chance(0.3);
  if (plan.as_view) {
    plan.view_cols = static_cast<std::uint64_t>(rng.uniform_int(8, 96));
    // Genuinely pitched more often than not: row gaps force the planner's
    // pitched-rectangle coalescing and the host path's row loop.
    plan.view_stride =
        plan.view_cols + static_cast<std::uint64_t>(rng.uniform_int(0, 48));
    const std::uint64_t max_rows = plan.floats / plan.view_stride;
    plan.view_rows = max_rows < 2
                         ? 0
                         : static_cast<std::uint64_t>(
                               rng.uniform_int(2, static_cast<std::int64_t>(
                                                      std::min<std::uint64_t>(
                                                          max_rows, 32))));
    if (plan.view_rows == 0) plan.as_view = false;
  }
  return plan;
}

/// Applies one plan to a rig; returns the device buffer holding the copied
/// payload (and, via out-params, the round-trip host buffer if any).
void apply_plan(Rig& rig, const Plan& plan, std::vector<float>* dev_result,
                std::vector<float>* round_trip_result) {
  Platform& p = rig.platform;
  auto& mmu = p.system().mmu();
  auto& runtime = p.runtime();

  // Fragmentation churn: allocate single pages, release a deterministic
  // subset — the next allocation pops scattered frames.
  std::vector<sim::VirtAddr> churn;
  for (int i = 0; i < plan.frag_allocs; ++i) {
    auto page = mmu.allocate(sim::kPageSize);
    ASSERT_TRUE(page.is_ok());
    churn.push_back(*page);
  }
  for (std::size_t i = 0; i < churn.size(); ++i) {
    if (plan.release_evens ? (i % 2 == 0) : (i % 2 == 1)) {
      ASSERT_TRUE(mmu.release(churn[i], sim::kPageSize).is_ok());
    } else {
      rig.host_pages.push_back(churn[i]);
    }
  }

  auto src = mmu.allocate(plan.floats * 4);
  ASSERT_TRUE(src.is_ok());
  write_floats_scattered(p, *src, plan.payload);
  auto dst = runtime.malloc_device(plan.floats * 4);
  ASSERT_TRUE(dst.is_ok());

  const auto launch_gemm = [&] {
    ASSERT_TRUE(runtime
                    .sgemm_async(Rig::kGemmDim, Rig::kGemmDim, Rig::kGemmDim,
                                 1.0f, rig.gemm_a, Rig::kGemmDim, rig.gemm_b,
                                 Rig::kGemmDim, 0.0f, rig.gemm_c,
                                 Rig::kGemmDim, cim::StationaryOperand::kB)
                    .is_ok());
  };

  if (plan.gemm_before) launch_gemm();
  if (plan.as_view) {
    // Copy only a pitched sub-matrix view of the scattered buffer (row gaps
    // when view_stride > view_cols).
    ASSERT_TRUE(runtime
                    .host_to_dev_2d(*dst, *src, plan.view_stride * 4,
                                    plan.view_cols * 4, plan.view_rows)
                    .is_ok());
  } else {
    ASSERT_TRUE(runtime.host_to_dev(*dst, *src, plan.floats * 4).is_ok());
  }
  if (plan.gemm_between) launch_gemm();

  sim::VirtAddr back = 0;
  if (plan.round_trip) {
    auto back_va = mmu.allocate(plan.floats * 4);
    ASSERT_TRUE(back_va.is_ok());
    // Round trips read back exactly the footprint the upload moved; the
    // gaps of a pitched view hold unwritten memory on both sides and are
    // excluded from the comparison below.
    if (plan.as_view) {
      ASSERT_TRUE(runtime
                      .dev_to_host_2d(back_va.value(), *dst,
                                      plan.view_stride * 4, plan.view_cols * 4,
                                      plan.view_rows)
                      .is_ok());
    } else {
      ASSERT_TRUE(
          runtime.dev_to_host(back_va.value(), *dst, plan.floats * 4).is_ok());
    }
    back = *back_va;
  }

  ASSERT_TRUE(runtime.synchronize().is_ok());
  // Gather only the moved elements (a pitched view's row gaps are skipped).
  const std::vector<std::uint64_t> indices = plan.moved_indices();
  dev_result->resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    auto pa = p.system().mmu().translate(*dst + indices[i] * 4);
    ASSERT_TRUE(pa.is_ok());
    (*dev_result)[i] = p.system().memory().read_scalar<float>(*pa);
  }
  if (plan.round_trip) {
    round_trip_result->resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      auto pa = p.system().mmu().translate(back + indices[i] * 4);
      ASSERT_TRUE(pa.is_ok());
      (*round_trip_result)[i] = p.system().memory().read_scalar<float>(*pa);
    }
    ASSERT_TRUE(mmu.release(back, plan.floats * 4).is_ok());
  } else {
    round_trip_result->clear();
  }
  ASSERT_TRUE(runtime.free_device(*dst).is_ok());
  ASSERT_TRUE(mmu.release(*src, plan.floats * 4).is_ok());
}

TEST(XferFuzzTest, RandomScatterGatherPlansMatchSynchronousHostPath) {
  const std::uint64_t seed = fuzz_seed();
  support::Rng rng{seed};
  Rig async_rig{/*async_copies=*/true};
  Rig sync_rig{/*async_copies=*/false};

  std::uint64_t scattered_plans = 0;
  for (std::uint64_t iter = 0; iter < 200; ++iter) {
    const Plan plan = draw_plan(rng, iter);
    std::vector<float> async_dev, async_back, sync_dev, sync_back;
    apply_plan(async_rig, plan, &async_dev, &async_back);
    apply_plan(sync_rig, plan, &sync_dev, &sync_back);
    if (HasFatalFailure()) return;

    // Bit-identical across the async DMA-chain path and the blocking
    // host-memcpy path, and both equal to the drawn payload.
    const std::vector<std::uint64_t> indices = plan.moved_indices();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      ASSERT_EQ(async_dev[i], sync_dev[i])
          << "seed " << seed << " iter " << iter << " element " << i << "/"
          << indices.size() << (plan.as_view ? " (view)" : " (flat)");
      ASSERT_EQ(async_dev[i], plan.payload[indices[i]])
          << "seed " << seed << " iter " << iter << " element " << i;
    }
    ASSERT_EQ(async_back, sync_back) << "seed " << seed << " iter " << iter;
    if (async_rig.platform.runtime().stream().report().copy_segments >
        async_rig.platform.runtime().stream().report().copies_enqueued) {
      ++scattered_plans;
    }

    // The interleaved GEMMs must agree bitwise as well: hazard ordering
    // against in-flight copies may differ in schedule, never in data.
    const auto async_c = async_rig.platform.read_floats(
        async_rig.gemm_c, Rig::kGemmDim * Rig::kGemmDim);
    const auto sync_c = sync_rig.platform.read_floats(
        sync_rig.gemm_c, Rig::kGemmDim * Rig::kGemmDim);
    ASSERT_EQ(async_c, sync_c) << "seed " << seed << " iter " << iter;
  }

  // The fragmentation churn must actually have produced scatter-gather
  // chains, or the differential layer tested nothing interesting.
  EXPECT_GT(scattered_plans, 10u) << "seed " << seed;
  const auto report = async_rig.platform.runtime().stream().report();
  EXPECT_GT(report.copies_enqueued, 0u);
  EXPECT_GT(report.copy_segments, report.copies_enqueued)
      << "no plan ever split into a multi-segment chain (seed " << seed << ")";
  EXPECT_LE(report.overlapped_copy_bytes, report.copy_bytes);
}

// --- layer 3: dev->dev migration segments vs host-bounce reference ---

/// One random migration trial: primes a random stationary tile on a
/// two-device runtime, migrates it over the requested path, optionally
/// migrates it back (the reverse dev->dev hop), reruns the GEMM, and
/// returns the final output.
struct MigrationTrial {
  std::uint64_t m = 0, n = 0, k = 0;
  std::uint64_t seed = 0;
  bool migrate_back = false;
};

std::vector<float> apply_migration_trial(const MigrationTrial& trial,
                                         bool peer_to_peer) {
  RuntimeConfig config;
  config.stream.depth = 2;
  config.xfer.min_async_bytes = 1024;
  testing::Platform p{config, {}, {}, /*accelerators=*/2};
  EXPECT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(trial.m * trial.k, 1.0, trial.seed);
  const auto b =
      testing::random_matrix(trial.k * trial.n, 1.0, trial.seed + 1);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(trial.m * trial.n);
  const auto gemm = [&] {
    EXPECT_TRUE(p.runtime()
                    .sgemm_with_stationary(
                        trial.m, trial.n, trial.k, 1.0f, va_a, trial.k, va_b,
                        trial.n, 0.0f, va_c, trial.n,
                        cim::StationaryOperand::kB, /*cacheable=*/true)
                    .is_ok());
  };
  gemm();
  EXPECT_TRUE(p.runtime().synchronize().is_ok());

  auto pa_b = p.system().mmu().translate(va_b);
  EXPECT_TRUE(pa_b.is_ok());
  double max_abs = 0.0;
  for (const float v : b) {
    max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
  }
  WeightKey key;
  key.rect = Rect{*pa_b, trial.n * 4, trial.n * 4, trial.k};
  key.ld = trial.n;
  key.scale = support::QuantScale::for_max_abs(max_abs).scale;
  key.layout = cim::StationaryOperand::kB;
  key.rows = static_cast<std::uint32_t>(trial.k);
  key.cols = static_cast<std::uint32_t>(trial.n);

  const auto placed = p.runtime().residency().peek(key);
  EXPECT_TRUE(placed.has_value());
  const int other = placed->device == 0 ? 1 : 0;
  EXPECT_TRUE(p.runtime().migrate_residency(key, other, peer_to_peer).is_ok());
  if (trial.migrate_back) {
    // Reverse hop while the first adoption may still be in flight — chains
    // two dev->dev segment plans through the hazard machinery.
    EXPECT_TRUE(p.runtime()
                    .migrate_residency(key, placed->device, peer_to_peer)
                    .is_ok());
  }
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  gemm();
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_GT(p.runtime().residency().report().migrations, 0u);
  return p.read_floats(va_c, trial.m * trial.n);
}

TEST(XferFuzzTest, RandomDevToDevMigrationsMatchHostBouncePath) {
  const std::uint64_t seed = fuzz_seed();
  support::Rng rng{seed};
  for (std::uint64_t iter = 0; iter < 16; ++iter) {
    MigrationTrial trial;
    trial.m = static_cast<std::uint64_t>(rng.uniform_int(4, 32));
    trial.n = static_cast<std::uint64_t>(rng.uniform_int(8, 64));
    trial.k = static_cast<std::uint64_t>(rng.uniform_int(8, 64));
    trial.seed = seed * 1000 + iter;
    trial.migrate_back = rng.chance(0.5);
    const auto p2p = apply_migration_trial(trial, /*peer_to_peer=*/true);
    const auto bounce = apply_migration_trial(trial, /*peer_to_peer=*/false);
    if (HasFatalFailure()) return;
    ASSERT_EQ(p2p.size(), bounce.size());
    for (std::size_t i = 0; i < p2p.size(); ++i) {
      ASSERT_EQ(p2p[i], bounce[i])
          << "dev->dev and host-bounce results diverged: seed " << seed
          << " iter " << iter << " element " << i << " (m=" << trial.m
          << " n=" << trial.n << " k=" << trial.k
          << (trial.migrate_back ? ", round trip)" : ")");
    }
  }
}

}  // namespace
}  // namespace tdo::rt
