// Tests for the CMA allocator, the kernel driver emulation and the
// accelerator's context-register protocol.
#include <gtest/gtest.h>

#include "cim/accelerator.hpp"
#include "runtime/cma.hpp"
#include "runtime/driver.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

TEST(CmaTest, AllocatesContiguousRanges) {
  CmaAllocator cma{sim::CmaRegion{0x100000, 16 * sim::kPageSize}};
  auto a = cma.allocate(3 * sim::kPageSize);
  ASSERT_TRUE(a.is_ok());
  auto b = cma.allocate(2 * sim::kPageSize);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(*b, *a + 3 * sim::kPageSize);  // first fit packs forward
  EXPECT_EQ(cma.bytes_allocated(), 5 * sim::kPageSize);
}

TEST(CmaTest, RoundsUpToPageGranularity) {
  CmaAllocator cma{sim::CmaRegion{0, 8 * sim::kPageSize}};
  auto a = cma.allocate(1);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(cma.bytes_allocated(), sim::kPageSize);
}

TEST(CmaTest, CoalescesOnRelease) {
  CmaAllocator cma{sim::CmaRegion{0, 8 * sim::kPageSize}};
  auto a = cma.allocate(2 * sim::kPageSize);
  auto b = cma.allocate(2 * sim::kPageSize);
  auto c = cma.allocate(2 * sim::kPageSize);
  ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
  ASSERT_TRUE(cma.release(*a).is_ok());
  ASSERT_TRUE(cma.release(*c).is_ok());
  ASSERT_TRUE(cma.release(*b).is_ok());  // merges both neighbours
  // After full coalescing the region-sized allocation must succeed again.
  EXPECT_TRUE(cma.allocate(8 * sim::kPageSize).is_ok());
}

TEST(CmaTest, ExhaustionAndDoubleFree) {
  CmaAllocator cma{sim::CmaRegion{0, 4 * sim::kPageSize}};
  auto a = cma.allocate(4 * sim::kPageSize);
  ASSERT_TRUE(a.is_ok());
  EXPECT_FALSE(cma.allocate(sim::kPageSize).is_ok());
  EXPECT_TRUE(cma.release(*a).is_ok());
  EXPECT_FALSE(cma.release(*a).is_ok());
}

TEST(DriverTest, AllocBufferIsContiguousAndMapped) {
  testing::Platform p;
  CimDriver& driver = p.runtime().driver();
  auto buffer = driver.alloc_buffer(10 * sim::kPageSize);
  ASSERT_TRUE(buffer.is_ok());
  EXPECT_TRUE(p.system().mmu().is_contiguous(buffer->va, buffer->bytes));
  auto pa = driver.translate(buffer->va);
  ASSERT_TRUE(pa.is_ok());
  EXPECT_EQ(*pa, buffer->pa);
  EXPECT_GE(driver.ioctl_count(), 1u);
  EXPECT_TRUE(driver.free_buffer(*buffer).is_ok());
}

TEST(DriverTest, SubmitFlushesCachesAndChargesHost) {
  testing::Platform p;
  // Dirty the caches with some host stores.
  for (int i = 0; i < 64; ++i) p.system().cpu().store(i * 64);
  const std::uint64_t insts_before = p.system().cpu().instructions();

  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kNop));
  ASSERT_TRUE(p.runtime().driver().submit(image).is_ok());
  EXPECT_EQ(p.runtime().driver().flush_count(), 1u);
  // Syscall + register MMIO + flush loop cost real instructions.
  EXPECT_GT(p.system().cpu().instructions(), insts_before + 1000);
  // The flush wrote back the dirty lines.
  EXPECT_GE(p.system().caches().l1d().writebacks(), 1u);
  (void)p.runtime().driver().wait();
}

TEST(DriverTest, WaitObservesCompletionStatus) {
  testing::Platform p;
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kNop));
  ASSERT_TRUE(p.runtime().driver().submit(image).is_ok());
  auto status = p.runtime().driver().wait();
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(*status, cim::DeviceStatus::kDone);
  // Acknowledged back to idle.
  EXPECT_EQ(p.accel().regs().status(), cim::DeviceStatus::kIdle);
}

TEST(AcceleratorTest, RejectsMisalignedRegisterIo) {
  testing::Platform p;
  std::array<std::uint8_t, 4> small{};
  EXPECT_FALSE(p.accel().mmio_read(0, small).is_ok());
  std::array<std::uint8_t, 8> ok{};
  EXPECT_FALSE(p.accel().mmio_read(3, ok).is_ok());
  EXPECT_TRUE(p.accel().mmio_read(0, ok).is_ok());
}

TEST(AcceleratorTest, BadJobSetsErrorStatus) {
  testing::Platform p;
  auto& regs = p.accel().regs();
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, 0);  // zero dimension -> invalid
  ASSERT_TRUE(p.runtime().driver().submit(image).is_ok());
  auto status = p.runtime().driver().wait();
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(*status, cim::DeviceStatus::kError);
  EXPECT_EQ(static_cast<support::StatusCode>(regs.read(cim::Reg::kResult)),
            support::StatusCode::kInvalidArgument);
}

TEST(AcceleratorTest, OversizedTileIsRejectedByEngine) {
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, 4);
  image.write(cim::Reg::kN, 512);  // > 256 columns: caller must tile
  image.write(cim::Reg::kK, 4);
  image.write(cim::Reg::kLda, 4);
  image.write(cim::Reg::kLdb, 512);
  image.write(cim::Reg::kLdc, 512);
  image.write_f64(cim::Reg::kScaleA, 0.01);
  image.write_f64(cim::Reg::kScaleB, 0.01);
  ASSERT_TRUE(p.runtime().driver().submit(image).is_ok());
  auto status = p.runtime().driver().wait();
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(*status, cim::DeviceStatus::kError);
}

TEST(AcceleratorTest, DoubleBufferingShortensJobs) {
  auto run = [](bool db) {
    rt::RuntimeConfig config;
    config.double_buffering = db;
    testing::Platform p{config};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const auto a = testing::random_matrix(64 * 64, 1.0, 1);
    const auto b = testing::random_matrix(64 * 64, 1.0, 2);
    const auto va_a = p.upload(a);
    const auto va_b = p.upload(b);
    const auto va_c = p.device_zeros(64 * 64);
    EXPECT_TRUE(p.runtime()
                    .sgemm(64, 64, 64, 1.0f, va_a, 64, va_b, 64, 0.0f, va_c, 64)
                    .is_ok());
    return p.accel().last_timeline().total();
  };
  EXPECT_LT(run(true).picoseconds(), run(false).picoseconds());
}

}  // namespace
}  // namespace tdo::rt
