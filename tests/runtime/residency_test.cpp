// Tests for the weight-residency cache (runtime/residency.*): cross-call
// stationary-tile reuse, epoch-based invalidation through the rectangle
// hazard machinery, LRU eviction order, affinity routing, and the serving
// loop acceptance regression (fewer crossbar writes, strictly faster at
// depth >= 2, bit-identical results across a mid-loop host update of B).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "runtime/residency.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;
using testing::random_matrix;
using testing::ref_gemm;

double max_abs_error(const std::vector<float>& got,
                     const std::vector<float>& want) {
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
  }
  return err;
}

RuntimeConfig residency_config(std::size_t depth = 2,
                               std::uint32_t capacity_rows = 0) {
  RuntimeConfig config;
  config.stream.depth = depth;
  config.residency.capacity_rows = capacity_rows;
  config.xfer.min_async_bytes = 1024;  // small test buffers still ride
  return config;
}

TEST(ResidencyTest, RepeatedGemmSkipsReprogramming) {
  Platform p{residency_config()};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 11);
  const auto b = random_matrix(k * n, 1.0, 12);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  const std::uint64_t writes_first = p.accel().report().weight_writes8;
  EXPECT_GT(writes_first, 0u);
  EXPECT_EQ(p.runtime().residency().report().misses, 1u);

  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  const auto report = p.accel().report();
  EXPECT_EQ(report.weight_writes8, writes_first)
      << "second call reprogrammed a resident tile";
  EXPECT_EQ(report.weight_writes_saved8, k * n);
  EXPECT_EQ(p.runtime().residency().report().hits, 1u);

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 0.15);
}

TEST(ResidencyTest, NonCacheableCallsDoNotPopulateTheCache) {
  Platform p{residency_config()};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 32, k = 32;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 21));
  const auto va_b = p.upload(random_matrix(k * n, 1.0, 22));
  const auto va_c = p.device_zeros(m * n);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(p.runtime()
                    .sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
                    .is_ok());
  }
  const auto res = p.runtime().residency().report();
  EXPECT_EQ(res.hits, 0u);
  EXPECT_EQ(res.entries, 0u);
  // Both calls programmed the tile (the paper's original behaviour).
  EXPECT_EQ(p.accel().report().weight_writes8, 2 * k * n);
}

TEST(ResidencyTest, HostUpdateOfCachedTileInvalidatesBeforeNextLaunch) {
  // WAR via rect overlap: a host_to_dev copy into a cached B mid-stream
  // must (a) order behind the in-flight reader and (b) kill the residency
  // entry, so the next launch reprograms from the updated data.
  Platform p{residency_config(4)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 31);
  const auto b_old = random_matrix(k * n, 1.0, 32);
  const auto b_new = random_matrix(k * n, 1.0, 33);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b_old);
  const auto va_src = p.upload(b_new);
  const auto va_c = p.device_zeros(m * n);

  // First call caches the tile and is still in flight when the update lands.
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB, /*cacheable=*/true)
                  .is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(va_b, va_src, k * n * 4).is_ok());
  EXPECT_GE(p.runtime().residency().report().invalidations, 1u)
      << "host update left a stale tile cached";

  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  EXPECT_EQ(p.runtime().residency().report().hits, 0u);
  EXPECT_EQ(p.accel().report().weight_writes_saved8, 0u)
      << "device reused a tile the host had overwritten";

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b_new, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 0.15)
      << "second launch observed the stale weights";
}

TEST(ResidencyTest, EvictionOrderIsLru) {
  // Capacity of two 64-row tiles: B1, B2, B3 -> B1 evicted; touching B2
  // then inserting B4 must evict B3 (the least recently used), not B2.
  Platform p{residency_config(2, /*capacity_rows=*/128)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 64, k = 64;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 41));
  const auto va_c = p.device_zeros(m * n);
  std::vector<sim::VirtAddr> bs;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(p.upload(random_matrix(k * n, 1.0, 50 + i)));
  }
  auto call = [&](sim::VirtAddr b) {
    ASSERT_TRUE(p.runtime()
                    .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, b, n, 0.0f,
                                           va_c, n, cim::StationaryOperand::kB,
                                           /*cacheable=*/true)
                    .is_ok());
  };
  call(bs[0]);  // miss, resident {B1}
  call(bs[1]);  // miss, resident {B1, B2}
  call(bs[2]);  // miss, evicts B1 -> {B2, B3}
  auto res = p.runtime().residency().report();
  EXPECT_EQ(res.misses, 3u);
  EXPECT_EQ(res.evictions, 1u);

  call(bs[1]);  // hit, refreshes B2
  call(bs[3]);  // miss, must evict B3 (LRU), keeping B2
  call(bs[1]);  // hit again: B2 survived
  call(bs[2]);  // miss: B3 was the victim
  res = p.runtime().residency().report();
  EXPECT_EQ(res.hits, 2u);
  EXPECT_EQ(res.misses, 5u);
  EXPECT_EQ(res.evictions, 3u);
}

TEST(ResidencyTest, AffinityRoutesToTheResidentAccelerator) {
  Platform p{residency_config(), cim::AcceleratorParams{}, sim::SystemParams{},
             /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 64, k = 64;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 61));
  const auto va_b1 = p.upload(random_matrix(k * n, 1.0, 62));
  const auto va_b2 = p.upload(random_matrix(k * n, 1.0, 63));
  const auto va_c = p.device_zeros(m * n);
  auto call = [&](sim::VirtAddr b) {
    ASSERT_TRUE(p.runtime()
                    .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, b, n, 0.0f,
                                           va_c, n, cim::StationaryOperand::kB,
                                           /*cacheable=*/true)
                    .is_ok());
  };
  // Round-robin places B1 on accelerator 0 and B2 on accelerator 1.
  call(va_b1);
  call(va_b2);
  const std::uint64_t jobs0 = p.accel(0).report().jobs;
  const std::uint64_t jobs1 = p.accel(1).report().jobs;
  // Every further B1 call must land where B1 is resident, overriding the
  // round-robin cursor.
  for (int i = 0; i < 3; ++i) call(va_b1);
  EXPECT_EQ(p.accel(0).report().jobs, jobs0 + 3);
  EXPECT_EQ(p.accel(1).report().jobs, jobs1);
  EXPECT_EQ(p.runtime().residency().report().hits, 3u);
}

TEST(ResidencyTest, AffinityDoesNotStarveAnAcceleratorWithQueuedWork) {
  // Accelerator 1 has a queue of B2 work; a burst of affinity-routed B1
  // calls lands on accelerator 0. Everything must drain: the affinity
  // override only redirects new work, it never blocks another queue.
  Platform p{residency_config(4), cim::AcceleratorParams{},
             sim::SystemParams{}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 71);
  const auto b1 = random_matrix(k * n, 1.0, 72);
  const auto b2 = random_matrix(k * n, 1.0, 73);
  const auto va_a = p.upload(a);
  const auto va_b1 = p.upload(b1);
  const auto va_b2 = p.upload(b2);
  const auto va_c1 = p.device_zeros(m * n);
  const auto va_c2 = p.device_zeros(m * n);

  // Seed residency: B1 -> accel 0, B2 -> accel 1.
  auto enqueue = [&](sim::VirtAddr b, sim::VirtAddr c) {
    ASSERT_TRUE(p.runtime()
                    .sgemm_async(m, n, k, 1.0f, va_a, k, b, n, 0.0f, c, n,
                                 cim::StationaryOperand::kB,
                                 /*cacheable=*/true)
                    .is_ok());
  };
  enqueue(va_b1, va_c1);
  enqueue(va_b2, va_c2);
  // Burst of B1 requests while accelerator 1 still works on B2.
  for (int i = 0; i < 4; ++i) enqueue(va_b1, va_c1);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  EXPECT_GE(p.accel(1).jobs_completed(), 1u) << "queued work starved";
  EXPECT_GE(p.accel(0).jobs_completed(), 5u);

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b2, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c2, m * n), want), 0.15);
}

// --- acceptance regression: the serving loop ---

struct ServingResult {
  std::uint64_t weight_writes = 0;
  std::uint64_t picoseconds = 0;
  std::vector<float> output;
};

ServingResult run_serving_loop(bool cache_enabled) {
  RuntimeConfig config;
  config.stream.depth = 2;
  config.residency.enabled = cache_enabled;
  config.xfer.min_async_bytes = 1024;
  Platform p{config};
  EXPECT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 81);
  const auto b1 = random_matrix(k * n, 1.0, 82);
  const auto b2 = random_matrix(k * n, 1.0, 83);
  const auto b1_updated = random_matrix(k * n, 1.0, 84);
  const auto va_a = p.upload(a);
  const auto va_b1 = p.upload(b1);
  const auto va_b2 = p.upload(b2);
  const auto va_update = p.upload(b1_updated);
  // Two rotating output buffers so back-to-back requests pipeline.
  const sim::VirtAddr va_c[2] = {p.device_zeros(m * n), p.device_zeros(m * n)};

  // Zipf-ish fixed request schedule over the two weight sets, with a host
  // update of B1 landing mid-loop.
  const std::size_t schedule[] = {0, 1, 0, 0, 1, 0, 0, 0};
  const sim::VirtAddr vb[2] = {va_b1, va_b2};
  const auto t0 = p.system().global_time();
  for (std::size_t r = 0; r < std::size(schedule); ++r) {
    if (r == 5) {
      EXPECT_TRUE(p.runtime().host_to_dev(va_b1, va_update, k * n * 4).is_ok());
    }
    EXPECT_TRUE(p.runtime()
                    .sgemm_async(m, n, k, 1.0f, va_a, k, vb[schedule[r]], n,
                                 0.0f, va_c[r % 2], n,
                                 cim::StationaryOperand::kB,
                                 /*cacheable=*/true)
                    .is_ok());
  }
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  const auto t1 = p.system().global_time();

  ServingResult result;
  result.weight_writes = p.accel().report().weight_writes8;
  result.picoseconds =
      static_cast<std::uint64_t>((t1 - t0).picoseconds());
  const auto c0 = p.read_floats(va_c[0], m * n);
  const auto c1 = p.read_floats(va_c[1], m * n);
  result.output = c0;
  result.output.insert(result.output.end(), c1.begin(), c1.end());
  return result;
}

TEST(ResidencyTest, ServingLoopRegression) {
  // The ISSUE's acceptance bar: with the cache, the serving loop performs
  // strictly fewer crossbar weight writes, is strictly faster end-to-end at
  // stream depth >= 2, and — because invalidation catches the mid-loop host
  // update of B1 — produces bit-identical results to the cache-off run.
  const ServingResult with_cache = run_serving_loop(true);
  const ServingResult without_cache = run_serving_loop(false);

  EXPECT_LT(with_cache.weight_writes, without_cache.weight_writes);
  EXPECT_LT(with_cache.picoseconds, without_cache.picoseconds);
  ASSERT_EQ(with_cache.output.size(), without_cache.output.size());
  EXPECT_EQ(0, std::memcmp(with_cache.output.data(),
                           without_cache.output.data(),
                           with_cache.output.size() * sizeof(float)))
      << "cached run diverged from the always-reprogram run";
}

/// Request-serial serving loop over a cyclic tile sequence longer than the
/// cache (classic LRU thrash): W weight sets, capacity W-1 tiles. Returns
/// total elapsed picoseconds plus the residency report.
struct PrefetchResult {
  double picoseconds = 0.0;
  ResidencyReport residency;
  std::vector<float> output;
};

PrefetchResult run_prefetch_loop(bool prefetch_on_miss) {
  RuntimeConfig config = residency_config(/*depth=*/2, /*capacity_rows=*/128);
  config.residency.prefetch_on_miss = prefetch_on_miss;
  Platform p{config};
  EXPECT_TRUE(p.runtime().init(0).is_ok());
  // Stationary A^T tiles: the weight phase's strided column reads make the
  // prefetchable DMA slice substantial, which is exactly what the chained
  // kProgram hides under the predecessor's stream phase.
  const std::size_t m = 64, n = 64, k = 64;
  constexpr std::size_t kSets = 3;       // 3 x 64-row tiles vs 128-row cache
  constexpr std::size_t kRequests = 36;  // 12 full cycles
  std::vector<sim::VirtAddr> va_a(kSets);
  for (std::size_t w = 0; w < kSets; ++w) {
    va_a[w] = p.upload(random_matrix(m * k, 1.0, 300 + w));
  }
  const auto va_b = p.upload(random_matrix(k * n, 1.0, 310));
  const auto va_c = p.device_zeros(m * n);

  const auto t0 = p.system().global_time();
  for (std::size_t r = 0; r < kRequests; ++r) {
    // Request-serial (one outstanding request, host thinks between them):
    // the window where prefetch-on-miss hides the successor's programming.
    EXPECT_TRUE(p.runtime()
                    .sgemm_with_stationary(m, n, k, 1.0f, va_a[r % kSets], k,
                                           va_b, n, 0.0f, va_c, n,
                                           cim::StationaryOperand::kA,
                                           /*cacheable=*/true)
                    .is_ok());
    EXPECT_TRUE(p.runtime().synchronize().is_ok());
  }
  PrefetchResult result;
  result.picoseconds = (p.system().global_time() - t0).picoseconds();
  result.residency = p.runtime().residency().report();
  result.output = p.read_floats(va_c, m * n);
  return result;
}

TEST(ResidencyTest, PrefetchOnMissHidesSuccessorProgramming) {
  const PrefetchResult off = run_prefetch_loop(false);
  const PrefetchResult on = run_prefetch_loop(true);

  // Without the predictor the cyclic loop thrashes: every request misses.
  EXPECT_EQ(off.residency.hits, 0u);
  EXPECT_EQ(off.residency.prefetch_hits, 0u);
  // With it, the successor tile is programmed during the current request
  // and most requests land as prefetch hits.
  EXPECT_GT(on.residency.prefetches, 0u);
  EXPECT_GT(on.residency.prefetch_hits, 0u);
  EXPECT_GT(on.residency.hits, off.residency.hits);
  // The acceptance bar: strictly fewer stall ticks end-to-end.
  EXPECT_LT(on.picoseconds, off.picoseconds);
  // Speculative programming must never change results.
  ASSERT_EQ(on.output.size(), off.output.size());
  EXPECT_EQ(0, std::memcmp(on.output.data(), off.output.data(),
                           on.output.size() * sizeof(float)))
      << "prefetching changed the computed output";
}

}  // namespace
}  // namespace tdo::rt
