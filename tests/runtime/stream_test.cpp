// Tests for the asynchronous command stream: enqueue/drain ordering, the
// dynamic CPU-fallback policy (intensity threshold and queue-full), the
// multi-accelerator round robin, and the overlap regression that backs the
// ablation_double_buffer bench.
#include <gtest/gtest.h>

#include "runtime/cim_api.hpp"
#include "runtime/cim_blas.hpp"
#include "runtime/stream.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;
using testing::random_matrix;
using testing::ref_gemm;

double max_abs_error(const std::vector<float>& got,
                     const std::vector<float>& want) {
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
  }
  return err;
}

TEST(StreamTest, EnqueueDrainPreservesDependencyOrder) {
  // Two async GEMMs accumulate into the same C: the second (beta = 1) must
  // observe the first's result even though both sit in the work queue when
  // the drain happens.
  RuntimeConfig config;
  config.stream.depth = 4;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 16, k = 16;
  const auto a = random_matrix(m * k, 1.0, 11);
  const auto b = random_matrix(k * n, 1.0, 12);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 1.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 1.0f, want, n);
  const auto got = p.read_floats(va_c, m * n);
  EXPECT_LT(max_abs_error(got, want), 0.15);
  EXPECT_EQ(p.accel().jobs_completed(), 2u);
  EXPECT_FALSE(p.accel().has_work());
}

TEST(StreamTest, QueueFullFallsBackToCpuWhenAllowed) {
  RuntimeConfig config;
  config.stream.depth = 1;
  config.stream.fallback_when_full = true;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 8, n = 8, k = 8;
  const auto a = random_matrix(m * k, 1.0, 21);
  const auto b = random_matrix(k * n, 1.0, 22);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c1 = p.device_zeros(m * n);
  const auto va_c2 = p.device_zeros(m * n);

  // First command occupies the single in-flight slot; the second arrives
  // while the queue is full and must execute on the host CPU model.
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c1, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c2, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.enqueued, 2u);
  EXPECT_EQ(report.cpu_fallbacks, 1u);
  EXPECT_EQ(report.fallbacks_queue_full, 1u);
  EXPECT_EQ(p.accel().jobs_completed(), 1u);

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  // The device result is quantized; the host-fallback result is exact.
  EXPECT_LT(max_abs_error(p.read_floats(va_c1, m * n), want), 0.15);
  EXPECT_LT(max_abs_error(p.read_floats(va_c2, m * n), want), 1e-5);
}

TEST(StreamTest, IntensityThresholdRoutesThinJobsToCpu) {
  // MACs-per-write of a stationary-B GEMM is m (the streamed-vector count):
  // m = 4 clears a threshold of 1000 never, so the job runs on the host.
  RuntimeConfig config;
  config.stream.min_macs_per_write = 1000.0;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 4, n = 16, k = 16;
  const auto a = random_matrix(m * k, 1.0, 31);
  const auto b = random_matrix(k * n, 1.0, 32);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.fallbacks_threshold, 1u);
  EXPECT_EQ(p.accel().report().jobs, 0u);  // never touched the device
  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 1e-5);
}

TEST(StreamTest, HighIntensityJobsStayOnDevice) {
  RuntimeConfig config;
  config.stream.min_macs_per_write = 16.0;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 64, n = 16, k = 16;  // intensity m = 64 >= 16
  const auto a = random_matrix(m * k, 1.0, 41);
  const auto b = random_matrix(k * n, 1.0, 42);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());
  EXPECT_EQ(p.runtime().stream().report().cpu_fallbacks, 0u);
  EXPECT_EQ(p.accel().report().jobs, 1u);
}

TEST(StreamTest, BatchRoundRobinsAcrossAccelerators) {
  auto run = [](std::vector<float>* out) {
    RuntimeConfig config;
    config.stream.depth = 4;
    Platform p{config, cim::AcceleratorParams{}, sim::SystemParams{},
               /*accelerators=*/2};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const std::size_t m = 16, n = 16, k = 16;
    const auto b = random_matrix(k * n, 1.0, 52);
    const auto va_b = p.upload(b);
    std::vector<GemmBatchItem> items;
    std::vector<sim::VirtAddr> cs;
    std::vector<std::vector<float>> as;
    for (int i = 0; i < 4; ++i) {
      as.push_back(random_matrix(m * k, 1.0, 100 + i));
      const auto va_a = p.upload(as.back());
      const auto va_c = p.device_zeros(m * n);
      cs.push_back(va_c);
      items.push_back(GemmBatchItem{va_a, va_b, va_c});
    }
    EXPECT_TRUE(p.runtime()
                    .sgemm_batched(m, n, k, 1.0f, items, k, n, 0.0f, n,
                                   cim::StationaryOperand::kB)
                    .is_ok());
    // Both accelerator instances executed a chunk of the batch.
    EXPECT_EQ(p.accel(0).report().jobs, 1u);
    EXPECT_EQ(p.accel(1).report().jobs, 1u);
    out->clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto got = p.read_floats(cs[i], m * n);
      out->insert(out->end(), got.begin(), got.end());
      std::vector<float> want(m * n, 0.0f);
      ref_gemm(m, n, k, 1.0f, as[i], k, b, n, 0.0f, want, n);
      EXPECT_LT(max_abs_error(got, want), 0.15) << "batch item " << i;
    }
  };
  std::vector<float> first;
  std::vector<float> second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);  // round robin is deterministic
}

TEST(StreamTest, TiledGemmSpreadsAcrossAccelerators) {
  // n = 2 crossbar widths -> two jj stripes, round-robined onto two devices.
  RuntimeConfig config;
  config.stream.depth = 2;
  Platform p{config, cim::AcceleratorParams{}, sim::SystemParams{},
             /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 512, k = 64;
  const auto a = random_matrix(m * k, 1.0, 61);
  const auto b = random_matrix(k * n, 1.0, 62);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());
  EXPECT_EQ(p.accel(0).report().jobs, 1u);
  EXPECT_EQ(p.accel(1).report().jobs, 1u);
  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 0.15);
}

/// Regression for the ablation_double_buffer bench: with stream depth >= 2
/// the chained tiles of an oversized GEMM (k = 2 crossbar heights) overlap
/// submission with execution and prefetch the next tile's weights, so the
/// simulated runtime is strictly below the depth-1 (serialized) schedule.
TEST(StreamTest, StreamDepthTwoBeatsSerializedSchedule) {
  auto run = [](std::size_t depth, std::uint64_t* overlap_ticks) {
    RuntimeConfig config;
    config.stream.depth = depth;
    Platform p{config};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const std::size_t m = 32, n = 256, k = 512;  // two kk tiles, one stripe
    const auto a = random_matrix(m * k, 1.0, 71);
    const auto b = random_matrix(k * n, 1.0, 72);
    const auto va_a = p.upload(a);
    const auto va_b = p.upload(b);
    const auto va_c = p.device_zeros(m * n);
    EXPECT_TRUE(p.runtime()
                    .sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
                    .is_ok());
    const auto snap = p.system().snapshot();
    *overlap_ticks = snap.counter_or("cim.overlap_ticks");
    return p.system().global_time();
  };
  std::uint64_t overlap_serial = 0;
  std::uint64_t overlap_stream = 0;
  const auto serialized = run(1, &overlap_serial);
  const auto overlapped = run(2, &overlap_stream);
  EXPECT_LT(overlapped.picoseconds(), serialized.picoseconds());
  EXPECT_EQ(overlap_serial, 0u);
  EXPECT_GT(overlap_stream, 0u);  // weight DMA hidden under streaming
}

TEST(StreamTest, WarHazardSynchronizesBeforeOverwritingQueuedInput) {
  // Call 2 sits in the work queue still *reading* X (its functional launch
  // is deferred to the completion chain); call 3 wants to *write* X and,
  // with the queue full, would run on the host CPU immediately. Without WAR
  // ordering it would clobber X before call 2 reads it.
  RuntimeConfig config;
  config.stream.depth = 2;
  config.stream.fallback_when_full = true;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16;
  const auto a1 = random_matrix(m * 256, 1.0, 81);
  const auto b1 = random_matrix(256 * m, 1.0, 82);
  const auto x0 = random_matrix(m * 256, 1.0, 83);
  const auto a3 = random_matrix(m * m, 1.0, 84);
  const auto b3 = random_matrix(m * 256, 1.0, 85);
  const auto va_a1 = p.upload(a1);
  const auto va_b1 = p.upload(b1);
  const auto va_x = p.upload(x0);
  const auto va_a3 = p.upload(a3);
  const auto va_b3 = p.upload(b3);
  const auto va_c1 = p.device_zeros(m * m);
  const auto va_c2 = p.device_zeros(m * m);

  // Long job keeps the device busy; the second call queues behind it.
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, m, 256, 1.0f, va_a1, 256, va_b1, m, 0.0f,
                               va_c1, m, cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, m, 256, 1.0f, va_x, 256, va_b1, m, 0.0f,
                               va_c2, m, cim::StationaryOperand::kB)
                  .is_ok());
  // Writer of X: must order after the queued reader, not run early.
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, 256, m, 1.0f, va_a3, m, va_b3, 256, 0.0f,
                               va_x, 256, cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  EXPECT_GE(p.runtime().stream().report().hazard_syncs, 1u);
  std::vector<float> want(m * m, 0.0f);
  ref_gemm(m, m, 256, 1.0f, x0, 256, b1, m, 0.0f, want, m);
  EXPECT_LT(max_abs_error(p.read_floats(va_c2, m * m), want), 1.2)
      << "queued reader observed the writer's output (WAR violation)";
}

TEST(StreamTest, SynchronizeSurfacesChainedJobErrors) {
  RuntimeConfig config;
  config.stream.depth = 4;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  // Hand-build a bad image (zero K) and push it through the stream.
  cim::ContextRegs image;
  image.write(cim::Reg::kOpcode, static_cast<std::uint64_t>(cim::Opcode::kGemm));
  image.write(cim::Reg::kM, 4);
  image.write(cim::Reg::kN, 4);
  image.write(cim::Reg::kK, 0);
  CimStream::Command command;
  command.image = image;
  command.allow_cpu_fallback = false;
  ASSERT_TRUE(p.runtime().stream().enqueue(command).is_ok());
  const auto status = p.runtime().stream().synchronize();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), support::StatusCode::kInvalidArgument);
  EXPECT_EQ(p.accel().jobs_failed(), 1u);
}

TEST(RuntimeBindingTest, RestoresPreviousRuntimeWhenNested) {
  Platform p1;
  Platform p2;
  EXPECT_EQ(api::current_runtime(), nullptr);
  {
    api::RuntimeBinding outer{p1.runtime()};
    EXPECT_EQ(api::current_runtime(), &p1.runtime());
    {
      api::RuntimeBinding inner{p2.runtime()};
      EXPECT_EQ(api::current_runtime(), &p2.runtime());
    }
    // The bug this guards against: the inner binding used to unbind
    // unconditionally, leaving the facade without a runtime here.
    EXPECT_EQ(api::current_runtime(), &p1.runtime());
  }
  EXPECT_EQ(api::current_runtime(), nullptr);
}

}  // namespace
}  // namespace tdo::rt
