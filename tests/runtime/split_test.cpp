// DTO-style pseudo-asynchronous work splitting: numeric correctness of the
// host/device stripe join, MAC accounting, the worker pool's FIFO retirement
// contract, and the admission controller's split-fraction ladder/retuning.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "runtime/host_pool.hpp"
#include "serve/admission.hpp"
#include "support/fixed_point.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using support::Duration;
using tdo::testing::Platform;
using tdo::testing::random_matrix;
using tdo::testing::ref_gemm;

[[nodiscard]] double gemm_error_bound(double max_a, double max_b,
                                      std::size_t k) {
  return support::dot_quant_error_bound(max_a, max_b, k) + 1e-3;
}

TEST(SplitTest, HostStripeJoinsAndMatchesReference) {
  RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 0.25;
  config.split.min_macs = 1;  // let this small GEMM split
  config.split.pool.workers = 2;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());

  const std::uint64_t m = 16, n = 32, k = 32;
  const auto a = random_matrix(m * k, 1.0, 11);
  const auto b = random_matrix(k * n, 1.0, 12);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
          .is_ok());

  // One call, one split: a quarter of the rows (rounded) ran on the pool,
  // the MAC accounting is exact, and the blocking call's synchronize joined
  // the stripe (completed == jobs).
  const RuntimeStats& stats = p.runtime().stats();
  EXPECT_EQ(stats.split_calls, 1u);
  const std::uint64_t m_host = 4;  // round(16 * 0.25)
  EXPECT_EQ(stats.split_host_macs, m_host * n * k);
  EXPECT_EQ(stats.split_host_macs + stats.split_device_macs, m * n * k);
  const HostPoolReport pool = p.runtime().host_pool().report();
  EXPECT_EQ(pool.jobs, 1u);
  EXPECT_EQ(pool.completed, 1u);
  EXPECT_EQ(pool.macs, m_host * n * k);
  EXPECT_GT(pool.busy_ticks, 0u);

  // The host stripe is exact float math, the device stripe is quantized;
  // both land inside the quantization bound.
  std::vector<float> expected(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, expected, n);
  const auto got = p.read_floats(va_c, m * n);
  const double bound = gemm_error_bound(1.0, 1.0, k);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], bound) << "element " << i;
  }
}

TEST(SplitTest, SmallJobsSkipTheSplit) {
  RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 0.25;
  // Default min_macs (1 MiMAC) far exceeds this 16K-MAC job.
  config.split.pool.workers = 2;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());

  const std::uint64_t m = 16, n = 32, k = 32;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 21));
  const auto va_b = p.upload(random_matrix(k * n, 1.0, 22));
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
          .is_ok());
  EXPECT_EQ(p.runtime().stats().split_calls, 0u);
  EXPECT_EQ(p.runtime().host_pool().report().jobs, 0u);
}

TEST(SplitTest, ZeroFractionDisablesSplitAtRuntime) {
  RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 0.25;
  config.split.min_macs = 1;
  config.split.pool.workers = 2;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  p.runtime().set_split_fraction(0.0);  // the admission controller's knob

  const std::uint64_t m = 16, n = 32, k = 32;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 31));
  const auto va_b = p.upload(random_matrix(k * n, 1.0, 32));
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
          .is_ok());
  EXPECT_EQ(p.runtime().stats().split_calls, 0u);
}

TEST(HostWorkerPoolTest, FifoRetirementJoinsOutOfOrderCompletions) {
  // A big stripe on worker 0, then a small stripe on worker 1: the small one
  // finishes first in simulated time, but completions retire FIFO, so the
  // completed count stays 0 until the big stripe's event fires and then
  // jumps straight to 2 (the exact-join contract the scheduler relies on).
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  HostPoolParams params;
  params.workers = 2;
  params.name = "pool_fifo";
  HostWorkerPool pool{p.system(), params};

  const auto translate = [&](sim::VirtAddr va) {
    auto pa = p.system().mmu().translate(va);
    EXPECT_TRUE(pa.is_ok());
    return *pa;
  };
  const auto make_job = [&](std::uint64_t m, std::uint64_t n, std::uint64_t k,
                            std::uint64_t seed) {
    HostStripeJob job;
    job.m = m;
    job.n = n;
    job.k = k;
    job.lda = k;
    job.ldb = n;
    job.ldc = n;
    job.pa_a = translate(p.upload(random_matrix(m * k, 1.0, seed)));
    job.pa_b = translate(p.upload(random_matrix(k * n, 1.0, seed + 1)));
    job.pa_c = translate(p.device_zeros(m * n));
    return job;
  };

  std::vector<std::pair<std::uint64_t, sim::Tick>> observed;
  pool.set_completion_observer([&](std::uint64_t completed, sim::Tick when) {
    observed.emplace_back(completed, when);
  });

  const HostPoolTicket big = pool.submit(make_job(32, 32, 32, 41));
  const HostPoolTicket small = pool.submit(make_job(2, 8, 8, 43));
  ASSERT_TRUE(big.accepted);
  ASSERT_TRUE(small.accepted);
  EXPECT_NE(big.worker, small.worker);
  ASSERT_LT(small.done, big.done);

  auto& events = p.system().events();
  events.run_until(small.done + 1);
  EXPECT_EQ(pool.jobs_completed(), 0u) << "small stripe must wait for FIFO";
  EXPECT_TRUE(observed.empty());
  events.run_until(big.done + 1);
  EXPECT_EQ(pool.jobs_completed(), 2u);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].first, 2u);
  EXPECT_EQ(observed[0].second, big.done);
  EXPECT_TRUE(pool.idle());
}

TEST(AdmissionSplitLadderTest, RungAndIndexAreInverse) {
  serve::AdmissionParams params;
  serve::AdmissionController admission{params, 0.0, 1024};
  EXPECT_DOUBLE_EQ(admission.split_rung(0), 0.0);
  EXPECT_DOUBLE_EQ(admission.split_rung(params.split_rungs), 0.5);
  EXPECT_EQ(admission.split_rung_index(0.0), 0);
  EXPECT_EQ(admission.split_rung_index(-1.0), 0);
  for (int i = 0; i <= params.split_rungs; ++i) {
    EXPECT_EQ(admission.split_rung_index(admission.split_rung(i)), i)
        << "rung " << i;
  }
  // Rungs above the ladder clamp to one half.
  EXPECT_DOUBLE_EQ(admission.split_rung(params.split_rungs + 3), 0.5);
}

TEST(AdmissionSplitLadderTest, RetuneTracksDeviceToHostLatencyRatio) {
  const serve::SiteKey site{64, 64, 64, 0};
  const std::uint64_t macs = 64 * 64 * 64;
  {
    // Equal per-MAC latencies: both stripes finish together at f* = 1/2.
    serve::AdmissionController admission{serve::AdmissionParams{}, 0.0, 1024};
    admission.observe(site, true, Duration::from_us(100.0), macs, 64 * 64);
    admission.observe(site, false, Duration::from_us(100.0), macs, 0);
    EXPECT_DOUBLE_EQ(admission.split_fraction(), 0.5);
    EXPECT_DOUBLE_EQ(admission.split_fraction_for(site), 0.5);
  }
  {
    // Host three times slower: f* = dev/(dev+host) = 1/4, one rung down.
    serve::AdmissionController admission{serve::AdmissionParams{}, 0.0, 1024};
    admission.observe(site, true, Duration::from_us(100.0), macs, 64 * 64);
    admission.observe(site, false, Duration::from_us(300.0), macs, 0);
    EXPECT_DOUBLE_EQ(admission.split_fraction(), 0.25);
    // A site with no observations falls back to the global knob.
    EXPECT_DOUBLE_EQ(admission.split_fraction_for(serve::SiteKey{8, 8, 8, 0}),
                     0.25);
  }
  {
    // tune_split off: the knob never moves.
    serve::AdmissionParams params;
    params.tune_split = false;
    serve::AdmissionController admission{params, 0.0, 1024};
    admission.observe(site, true, Duration::from_us(100.0), macs, 64 * 64);
    admission.observe(site, false, Duration::from_us(100.0), macs, 0);
    EXPECT_DOUBLE_EQ(admission.split_fraction(), 0.0);
  }
}

}  // namespace
}  // namespace tdo::rt
