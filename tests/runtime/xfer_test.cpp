// Tests for the transfer engine (runtime/xfer.*): the rectangle-granular
// hazard geometry, copies riding the command stream as DMA commands, the
// no-sync guarantee for disjoint rectangles, and the regression that async
// copies + stream depth >= 2 beat the synchronous-copy baseline.
#include <gtest/gtest.h>

#include "polybench/harness.hpp"
#include "runtime/cim_blas.hpp"
#include "runtime/stream.hpp"
#include "runtime/xfer.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;
using testing::random_matrix;
using testing::ref_gemm;

double max_abs_error(const std::vector<float>& got,
                     const std::vector<float>& want) {
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
  }
  return err;
}

// --- Rect geometry ---

TEST(RectTest, LinearRangesOverlapLikeIntervals) {
  const Rect a = Rect::linear(0x1000, 256);
  EXPECT_TRUE(a.overlaps(Rect::linear(0x10ff, 1)));
  EXPECT_FALSE(a.overlaps(Rect::linear(0x1100, 64)));  // touching, not overlapping
  EXPECT_FALSE(a.overlaps(Rect::linear(0x0f00, 0x100)));
  EXPECT_TRUE(a.overlaps(Rect::linear(0x0f00, 0x101)));
  EXPECT_FALSE(a.overlaps(Rect{}));  // empty never overlaps
}

TEST(RectTest, DisjointColumnStripesWithSharedPitchDoNotOverlap) {
  // Two column stripes of one 16-row matrix with pitch 2048: bytes [0,1024)
  // and [1024,2048) of every row. Bounding ranges interleave completely; the
  // byte sets are disjoint.
  const Rect left{0x10000, 2048, 1024, 16};
  const Rect right{0x10000 + 1024, 2048, 1024, 16};
  EXPECT_FALSE(left.overlaps(right));
  EXPECT_FALSE(right.overlaps(left));
  EXPECT_TRUE(left.overlaps(left));
  // One shared byte at the stripe boundary flips the verdict.
  const Rect wide_left{0x10000, 2048, 1025, 16};
  EXPECT_TRUE(wide_left.overlaps(right));
}

TEST(RectTest, DegenerateOneDimensionalAgainstPitchedRect) {
  const Rect stripe{0x8000, 1024, 256, 8};  // rows at 0x8000, 0x8400, ...
  // A flat range falling entirely inside one inter-row gap.
  EXPECT_FALSE(stripe.overlaps(Rect::linear(0x8100, 0x300 - 1)));
  // A flat range clipping the start of row 3 (0x8000 + 3*0x400 = 0x8C00).
  EXPECT_TRUE(stripe.overlaps(Rect::linear(0x8bff, 2)));
  // A flat range spanning the whole footprint.
  EXPECT_TRUE(stripe.overlaps(Rect::linear(0x7000, 0x4000)));
  // Ends exactly where row 0 begins.
  EXPECT_FALSE(stripe.overlaps(Rect::linear(0x7000, 0x1000)));
}

TEST(RectTest, DifferentPitchesAreTestedPrecisely) {
  // Pitch-768 rows vs pitch-1024 rows starting 256 bytes apart: row starts
  // drift relative to each other, so only a precise per-row test works.
  const Rect a{0x0, 768, 128, 6};     // rows at 0, 768, 1536, 2304, 3072, 3840
  const Rect b{0x100, 1024, 128, 4};  // rows at 256, 1280, 2304, 3328
  EXPECT_TRUE(a.overlaps(b));  // rows coincide at 2304
  const Rect c{0x200, 1024, 64, 4};  // rows at 512, 1536, 2560, 3584
  EXPECT_FALSE(a.overlaps(Rect{0x180, 768, 64, 5}));  // offset into every gap
  EXPECT_TRUE(c.overlaps(a));  // 1536 is a row start of both a and c
}

TEST(RectTrackerTest, TracksReadsAndWritesIndependently) {
  RectTracker tracker;
  tracker.note_write(Rect::linear(0x1000, 64));
  tracker.note_read(Rect::linear(0x2000, 64));
  EXPECT_TRUE(tracker.writes_overlap(Rect::linear(0x1020, 8)));
  EXPECT_FALSE(tracker.writes_overlap(Rect::linear(0x2020, 8)));
  EXPECT_TRUE(tracker.reads_overlap(Rect::linear(0x2020, 8)));
  EXPECT_FALSE(tracker.empty());
  tracker.clear();
  EXPECT_TRUE(tracker.empty());
  EXPECT_FALSE(tracker.writes_overlap(Rect::linear(0x1000, 64)));
}

// --- transfer engine through the runtime ---

RuntimeConfig async_copy_config(std::size_t depth = 2) {
  RuntimeConfig config;
  config.stream.depth = depth;
  config.xfer.async_copies = true;
  config.xfer.min_async_bytes = 1024;  // small buffers in tests still ride
  return config;
}

TEST(XferTest, AsyncCopyRidesTheStreamAndLandsCorrectly) {
  Platform p{async_copy_config()};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t count = 64 * 64;
  const auto data = random_matrix(count, 3.0, 11);
  const auto src = p.upload(data);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.copies_enqueued, 1u);
  EXPECT_EQ(report.copy_bytes, count * 4);
  EXPECT_EQ(p.accel().jobs_completed(), 0u);  // DMA channel, not the engine
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), data), 0.0);
  // The channel advanced simulated time.
  EXPECT_GT(p.system().events().now(), 0u);
}

TEST(XferTest, SmallCopiesStayOnTheHostPath) {
  RuntimeConfig config = async_copy_config();
  config.xfer.min_async_bytes = 1 << 20;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto data = random_matrix(256, 1.0, 12);
  const auto src = p.upload(data);
  auto dst = p.runtime().malloc_device(256 * 4);
  ASSERT_TRUE(dst.is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, 256 * 4).is_ok());
  EXPECT_EQ(p.runtime().stream().report().copies_enqueued, 0u);
  EXPECT_EQ(p.runtime().xfer().host_copies(), 1u);
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, 256), data), 0.0);
}

TEST(XferTest, CopyAgainstDisjointInFlightRectangleDoesNotSynchronize) {
  // A long GEMM writes C while a copy into an unrelated buffer is enqueued:
  // the copy's rectangles are disjoint from every pending rectangle, so no
  // hazard synchronization may happen and the copy overlaps the compute.
  Platform p{async_copy_config(4)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 64, n = 128, k = 128;
  const auto a = random_matrix(m * k, 1.0, 21);
  const auto b = random_matrix(k * n, 1.0, 22);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  const std::size_t count = 64 * 64;
  const auto payload = random_matrix(count, 2.0, 23);
  const auto src = p.upload(payload);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.accel().has_work());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.hazard_syncs, 0u) << "disjoint copy forced a drain";
  EXPECT_EQ(report.copies_enqueued, 1u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  // The copy's transfer window ran while the engine was busy (the exact
  // figure is settled when the copy completes).
  EXPECT_GT(p.runtime().stream().report().overlapped_copy_bytes, 0u);
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), payload), 0.0);
}

TEST(XferTest, CopyOverwritingQueuedInputSynchronizesFirst) {
  // WAR through the transfer engine: a queued GEMM still reads A (its
  // functional work is deferred to the completion chain); a copy targeting
  // A must drain the stream before overwriting it.
  Platform p{async_copy_config(4)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 31);
  const auto b = random_matrix(k * n, 1.0, 32);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  const auto overwrite = random_matrix(m * k, 9.0, 33);
  const auto va_new = p.upload(overwrite);

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(va_a, va_new, m * k * 4).is_ok());
  EXPECT_GE(p.runtime().stream().report().hazard_syncs, 1u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 0.15)
      << "GEMM observed the overwritten A";
}

TEST(XferTest, DisjointColumnStripesOfDifferentCallsOverlap) {
  // Two sgemm_async calls write disjoint jj column stripes of the same C
  // (and read disjoint B stripes) — exactly what a caller-tiled stationary-B
  // schedule produces. Rectangle hazards keep both in flight at once; the
  // old flat byte ranges forced a drain between them.
  Platform p{async_copy_config(4)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 128, k = 64, half = n / 2;
  const auto a = random_matrix(m * k, 1.0, 41);
  const auto b = random_matrix(k * n, 1.0, 42);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, half, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c,
                               n, cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, half, k, 1.0f, va_a, k, va_b + half * 4, n,
                               0.0f, va_c + half * 4, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  EXPECT_EQ(p.runtime().stream().report().hazard_syncs, 0u)
      << "disjoint stripes of different calls forced a drain";
  EXPECT_EQ(p.runtime().stream().report().syncs, 0u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(va_c, m * n), want), 0.15);
}

TEST(XferTest, OverlapAccountsChainedJobsBusyWindows) {
  // A copy whose transfer window lies entirely under a chain of back-to-back
  // tile jobs must be counted as fully hidden. The old accounting compared
  // against the running job only (a lower bound); the exact figure credits
  // every chained launch's busy window.
  Platform p{async_copy_config(8),
             [] {
               cim::AcceleratorParams params;
               params.tile.crossbar.rows = 128;
               params.tile.crossbar.cols = 128;
               return params;
             }()};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  // k = 512 with 128 crossbar rows -> 4 chained kk tiles on one queue.
  const std::size_t m = 128, n = 64, k = 512;
  const auto a = random_matrix(m * k, 1.0, 51);
  const auto b = random_matrix(k * n, 1.0, 52);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  const std::size_t count = 64 * 64;
  const auto payload = random_matrix(count, 2.0, 53);
  const auto src = p.upload(payload);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_GT(p.accel().in_flight(), 1u) << "no chain to hide the copy under";
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.copy_bytes, count * 4);
  EXPECT_EQ(report.overlapped_copy_bytes, report.copy_bytes)
      << "copy spanning a job chain was not counted as fully hidden";
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), payload), 0.0);
}

TEST(XferTest, PerStripeCopyBackDrainsProducersIndividually) {
  // C's jj column stripes land on two accelerators; the dev_to_host of C
  // must split along the stripes, draining each producer separately (the
  // second accelerator keeps streaming while the first stripe copies out)
  // instead of a full-stream drain followed by one monolithic copy.
  Platform p{async_copy_config(4),
             [] {
               cim::AcceleratorParams params;
               params.tile.crossbar.rows = 128;
               params.tile.crossbar.cols = 128;
               return params;
             }(),
             sim::SystemParams{}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 32, n = 256, k = 64;  // two 128-column stripes
  const auto a = random_matrix(m * k, 1.0, 61);
  const auto b = random_matrix(k * n, 1.0, 62);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  auto dst = p.runtime().malloc_device(m * n * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime().dev_to_host(*dst, va_c, m * n * 4).is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.device_drains, 2u) << "copy-back did not split per stripe";
  EXPECT_EQ(report.syncs, 0u) << "copy-back fell back to a full drain";
  EXPECT_EQ(report.copies_enqueued, 2u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  EXPECT_LT(max_abs_error(p.read_floats(*dst, m * n), want), 0.15)
      << "striped copy-back corrupted the transfer";
}

// --- scatter-gather copy chains ---

using testing::read_floats_scattered;
using testing::write_floats_scattered;

/// Allocates `bytes` of virtual memory whose physical frames are scattered:
/// a handful of single pages are allocated and every other one released, so
/// the buffer's pages pop from the fragmented free list in reverse order.
sim::VirtAddr alloc_scattered(Platform& p, std::uint64_t bytes) {
  auto& mmu = p.system().mmu();
  std::vector<sim::VirtAddr> holes;
  for (int i = 0; i < 8; ++i) {
    auto page = mmu.allocate(sim::kPageSize);
    EXPECT_TRUE(page.is_ok());
    holes.push_back(*page);
  }
  for (std::size_t i = 0; i < holes.size(); i += 2) {
    EXPECT_TRUE(mmu.release(holes[i], sim::kPageSize).is_ok());
  }
  auto va = mmu.allocate(bytes);
  EXPECT_TRUE(va.is_ok());
  return *va;
}

TEST(XferSgTest, ScatteredHostBufferRidesAsSingleCopyChain) {
  // The acceptance criterion: a page-scattered (>= 4 segment) host buffer
  // copy executes as ONE stream kCopy command chain — no host-memcpy
  // fallback, bit-identical payload.
  Platform p{async_copy_config(4)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t count = (4 * sim::kPageSize + 256) / 4;
  const auto data = random_matrix(count, 5.0, 71);
  const sim::VirtAddr src = alloc_scattered(p, count * 4);
  ASSERT_FALSE(p.system().mmu().is_contiguous(src, count * 4))
      << "fragmentation setup failed to scatter the buffer";
  write_floats_scattered(p, src, data);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
  auto report = p.runtime().stream().report();
  EXPECT_EQ(report.copies_enqueued, 1u) << "chain split into several commands";
  EXPECT_EQ(p.runtime().xfer().host_copies(), 0u) << "host-memcpy fallback";
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  report = p.runtime().stream().report();
  EXPECT_GE(report.copy_segments, 4u) << "not a scatter-gather chain";
  EXPECT_EQ(report.copy_bytes, count * 4);
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), data), 0.0);

  // And back: device -> scattered host destination, still on the stream.
  const sim::VirtAddr back = alloc_scattered(p, count * 4);
  ASSERT_TRUE(p.runtime().dev_to_host(back, *dst, count * 4).is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(p.runtime().xfer().host_copies(), 0u);
  EXPECT_EQ(max_abs_error(read_floats_scattered(p, back, count), data), 0.0);
}

TEST(XferSgTest, SubThresholdSegmentDoesNotForceHostFallback) {
  // min_async_bytes applies to the copy as a whole (the chain amortizes the
  // descriptor round trip): a large copy whose scatter includes a segment
  // smaller than the threshold still rides the stream.
  RuntimeConfig config = async_copy_config();
  config.xfer.min_async_bytes = 16 * 1024;
  Platform p{config};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  auto& mmu = p.system().mmu();
  // One released page followed by fresh ascending frames: the buffer maps to
  // a lone 4 KiB segment plus one 16 KiB contiguous run.
  auto hole = mmu.allocate(sim::kPageSize);
  ASSERT_TRUE(hole.is_ok());
  auto filler = mmu.allocate(sim::kPageSize);
  ASSERT_TRUE(filler.is_ok());
  ASSERT_TRUE(mmu.release(*hole, sim::kPageSize).is_ok());
  auto src = mmu.allocate(5 * sim::kPageSize);
  ASSERT_TRUE(src.is_ok());
  ASSERT_FALSE(mmu.is_contiguous(*src, 5 * sim::kPageSize));

  const std::size_t count = 5 * sim::kPageSize / 4;
  const auto data = random_matrix(count, 2.0, 72);
  write_floats_scattered(p, *src, data);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, *src, count * 4).is_ok());
  EXPECT_EQ(p.runtime().stream().report().copies_enqueued, 1u)
      << "sub-threshold segment pushed the whole copy to the host path";
  EXPECT_EQ(p.runtime().xfer().host_copies(), 0u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), data), 0.0);
}

TEST(XferSgTest, StridedSubMatrixViewRidesAsPitchedSegment) {
  // A sub-matrix view (rows x width with a row pitch) of contiguous buffers
  // coalesces back into a single pitched rectangle segment; only the view's
  // bytes move.
  Platform p{async_copy_config()};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t rows = 48, cols = 64, view_cols = 32, row0 = 8, col0 = 16;
  const auto data = random_matrix(rows * cols, 3.0, 73);
  const auto src = p.upload(data);
  const auto dst = p.device_zeros(rows * cols);

  const std::uint64_t off = (row0 * cols + col0) * 4;
  ASSERT_TRUE(p.runtime()
                  .host_to_dev_2d(dst + off, src + off, cols * 4, view_cols * 4,
                                  /*rows=*/24)
                  .is_ok());
  auto report = p.runtime().stream().report();
  EXPECT_EQ(report.copies_enqueued, 1u);
  EXPECT_EQ(report.copy_bytes, 24u * view_cols * 4u);
  EXPECT_EQ(p.runtime().xfer().host_copies(), 0u);
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(p.runtime().stream().report().copy_segments, 1u)
      << "contiguous-row view should coalesce into one pitched rectangle";

  const auto got = p.read_floats(dst, rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const bool inside = r >= row0 && r < row0 + 24 && c >= col0 &&
                          c < col0 + view_cols;
      const float want = inside ? data[r * cols + c] : 0.0f;
      ASSERT_EQ(got[r * cols + c], want) << "row " << r << " col " << c;
    }
  }
}

// --- DMA-channel contention ---

TEST(XferContentionTest, PinnedChannelSerializesEngineDmaAndCopy) {
  // One DMA channel: the engine's weight/vector traffic and the stream copy
  // share a single busy-window timeline, so the copy serializes behind the
  // engine's own DMA instead of overlapping for free — contended ticks are
  // visible and the overlap credit stays strictly below the copy's bytes.
  cim::AcceleratorParams accel;
  accel.dma.channels = 1;
  Platform p{async_copy_config(8), accel};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 64, n = 128, k = 128;
  const auto a = random_matrix(m * k, 1.0, 81);
  const auto b = random_matrix(k * n, 1.0, 82);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  // Large enough that, once serialized behind the engine's weight and
  // vector DMA windows, the copy spills past the job's end — so full hiding
  // is impossible and the exact credit must come up short.
  const std::size_t count = 256 * 256;
  const auto payload = random_matrix(count, 2.0, 83);
  const auto src = p.upload(payload);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());

  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                               cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.accel().has_work());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  const auto report = p.runtime().stream().report();
  EXPECT_GT(report.copy_contended_ticks, 0u)
      << "copy did not serialize behind the engine's own DMA";
  EXPECT_EQ(report.copy_migrations, 0u) << "nowhere to migrate with 1 channel";
  EXPECT_LT(report.overlapped_copy_bytes, report.copy_bytes)
      << "overlap credit exceeded the single channel's idle window";
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), payload), 0.0);
}

TEST(XferContentionTest, QueuedJobPrefetchWindowBlocksCopyDoubleBooking) {
  // A queued job's stream-level weight-load prefetch runs in the running
  // job's stream tail on the engine channel. That window is reserved on the
  // Dma timeline at enqueue time, so a stream copy submitted while the job
  // waits can no longer first-fit into (double-book) the prefetch slot: with
  // one channel and a copy too large for the remaining gap, the copy must
  // start at or after the running job's completion.
  cim::AcceleratorParams accel;
  accel.dma.channels = 1;
  Platform p{async_copy_config(2), accel};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 128, n = 64, k = 64;
  const auto a1 = random_matrix(m * k, 1.0, 91);
  const auto b1 = random_matrix(k * n, 1.0, 92);
  const auto a2 = random_matrix(m * k, 1.0, 93);
  const auto b2 = random_matrix(k * n, 1.0, 94);
  const auto va_a1 = p.upload(a1);
  const auto va_b1 = p.upload(b1);
  const auto va_c1 = p.device_zeros(m * n);
  const auto va_a2 = p.upload(a2);
  const auto va_b2 = p.upload(b2);
  const auto va_c2 = p.device_zeros(m * n);

  // Job 1 launches; job 2 chains behind it and reserves its weight-DMA
  // prefetch window at the tail of job 1's stream phase.
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a1, k, va_b1, n, 0.0f, va_c1,
                               n, cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_TRUE(p.runtime()
                  .sgemm_async(m, n, k, 1.0f, va_a2, k, va_b2, n, 0.0f, va_c2,
                               n, cim::StationaryOperand::kB)
                  .is_ok());
  ASSERT_EQ(p.accel().in_flight(), 2u);

  // A copy far larger than any idle gap inside job 1's stream phase: with
  // the tail booked for the prefetch, first-fit must push it past job 1.
  const std::size_t count = 512 * 512;
  const auto payload = random_matrix(count, 2.0, 95);
  const auto src = p.upload(payload);
  auto dst = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst.is_ok());
  const std::uint64_t contended_before =
      p.accel().dma().contended_copy_ticks();
  ASSERT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
  const sim::Tick now = p.system().events().now();
  const sim::Tick job1_done = p.accel().busy_until();
  ASSERT_GT(job1_done, now) << "job 1 already retired; scenario degenerate";

  // start >= job1_done  =>  contended ticks >= the full remaining busy span.
  EXPECT_GE(p.accel().dma().contended_copy_ticks() - contended_before,
            job1_done - now)
      << "copy was placed inside the reserved prefetch window";

  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(max_abs_error(p.read_floats(*dst, count), payload), 0.0);
}

TEST(XferContentionTest, QueuedBodyReservationPushesCopyPastQueuedStream) {
  // Mutation regression for queue-aware body reservation: a queued job's
  // *stream-body* DMA (not just its weight prefetch) is advisory-reserved on
  // the engine channel at enqueue time. With one channel, a copy submitted
  // while the job waits must therefore first-fit past the queued job's
  // estimated body traffic — strictly later than the same copy placed with
  // the reservation disabled. Deleting the reservation (the mutation) makes
  // both runs place the copy identically and the test fail.
  struct Run {
    std::uint64_t contended = 0;
    double copy_err = 0.0;
  };
  const auto run = [](bool reserve_body) {
    cim::AcceleratorParams accel;
    accel.dma.channels = 1;  // with a second channel the copy rides it free
    accel.queue_body_reserve = reserve_body;
    Platform p{async_copy_config(2), accel};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const std::size_t m = 128, n = 64, k = 64;
    const auto a1 = random_matrix(m * k, 1.0, 101);
    const auto b1 = random_matrix(k * n, 1.0, 102);
    const auto a2 = random_matrix(m * k, 1.0, 103);
    const auto b2 = random_matrix(k * n, 1.0, 104);
    const auto va_a1 = p.upload(a1);
    const auto va_b1 = p.upload(b1);
    const auto va_c1 = p.device_zeros(m * n);
    const auto va_a2 = p.upload(a2);
    const auto va_b2 = p.upload(b2);
    const auto va_c2 = p.device_zeros(m * n);
    EXPECT_TRUE(p.runtime()
                    .sgemm_async(m, n, k, 1.0f, va_a1, k, va_b1, n, 0.0f,
                                 va_c1, n, cim::StationaryOperand::kB)
                    .is_ok());
    EXPECT_TRUE(p.runtime()
                    .sgemm_async(m, n, k, 1.0f, va_a2, k, va_b2, n, 0.0f,
                                 va_c2, n, cim::StationaryOperand::kB)
                    .is_ok());
    EXPECT_EQ(p.accel().in_flight(), 2u) << "job 2 did not queue";

    // Too large for any idle gap inside job 1's stream phase: without the
    // body reservation the copy starts at job 1's completion; with it, the
    // first-fit must also clear job 2's estimated weight+body chain.
    const std::size_t count = 512 * 512;
    const auto payload = random_matrix(count, 2.0, 105);
    const auto src = p.upload(payload);
    auto dst = p.runtime().malloc_device(count * 4);
    EXPECT_TRUE(dst.is_ok());
    const std::uint64_t contended_before =
        p.accel().dma().contended_copy_ticks();
    EXPECT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
    Run result;
    result.contended =
        p.accel().dma().contended_copy_ticks() - contended_before;
    EXPECT_TRUE(p.runtime().synchronize().is_ok());
    result.copy_err = max_abs_error(p.read_floats(*dst, count), payload);
    return result;
  };
  const Run reserved = run(true);
  const Run unreserved = run(false);
  EXPECT_GT(reserved.contended, unreserved.contended)
      << "body reservation did not move the copy past the queued job's"
         " stream traffic";
  EXPECT_EQ(reserved.copy_err, 0.0);
  EXPECT_EQ(unreserved.copy_err, 0.0);
}

TEST(XferContentionTest, SecondChannelAbsorbsTheCopyWhenIdle) {
  // Same workload, two channels (default): the copy migrates to the idle
  // channel instead of waiting, and hides more of its window under compute
  // than the pinned single-channel run ever can.
  const auto run = [](std::uint32_t channels) {
    cim::AcceleratorParams accel;
    accel.dma.channels = channels;
    Platform p{async_copy_config(8), accel};
    EXPECT_TRUE(p.runtime().init(0).is_ok());
    const std::size_t m = 64, n = 128, k = 128;
    const auto a = random_matrix(m * k, 1.0, 91);
    const auto b = random_matrix(k * n, 1.0, 92);
    const auto va_a = p.upload(a);
    const auto va_b = p.upload(b);
    const auto va_c = p.device_zeros(m * n);
    const std::size_t count = 256 * 256;
    const auto payload = random_matrix(count, 2.0, 93);
    const auto src = p.upload(payload);
    auto dst = p.runtime().malloc_device(count * 4);
    EXPECT_TRUE(dst.is_ok());
    EXPECT_TRUE(p.runtime()
                    .sgemm_async(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n,
                                 cim::StationaryOperand::kB)
                    .is_ok());
    EXPECT_TRUE(p.runtime().host_to_dev(*dst, src, count * 4).is_ok());
    EXPECT_TRUE(p.runtime().synchronize().is_ok());
    return p.runtime().stream().report();
  };
  const auto pinned = run(1);
  const auto dual = run(2);
  EXPECT_EQ(dual.copy_contended_ticks, 0u)
      << "idle copy channel still made the copy wait";
  EXPECT_GT(pinned.copy_contended_ticks, dual.copy_contended_ticks);
  EXPECT_GE(dual.overlapped_copy_bytes, pinned.overlapped_copy_bytes);
  EXPECT_LE(dual.overlapped_copy_bytes, dual.copy_bytes);
}

TEST(XferContentionTest, CopyMigratesToIdleChannelUnderCopyPressure) {
  // Two back-to-back copies with the engine idle: the first takes the
  // dedicated copy channel, the second migrates to channel 0 rather than
  // serializing behind it.
  Platform p{async_copy_config(8)};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t count = 64 * 64;
  const auto one = random_matrix(count, 1.0, 94);
  const auto two = random_matrix(count, 1.0, 95);
  const auto src1 = p.upload(one);
  const auto src2 = p.upload(two);
  auto dst1 = p.runtime().malloc_device(count * 4);
  auto dst2 = p.runtime().malloc_device(count * 4);
  ASSERT_TRUE(dst1.is_ok());
  ASSERT_TRUE(dst2.is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst1, src1, count * 4).is_ok());
  ASSERT_TRUE(p.runtime().host_to_dev(*dst2, src2, count * 4).is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  const auto report = p.runtime().stream().report();
  EXPECT_EQ(report.copies_enqueued, 2u);
  EXPECT_GE(report.copy_migrations, 1u) << "second copy waited instead of"
                                           " taking the idle channel";
  EXPECT_EQ(max_abs_error(p.read_floats(*dst1, count), one), 0.0);
  EXPECT_EQ(max_abs_error(p.read_floats(*dst2, count), two), 0.0);
}

// --- end-to-end regression ---

TEST(XferTest, AsyncCopiesWithDepthTwoBeatSynchronousCopyBaseline) {
  // The acceptance regression: on a polybench workload whose copies are
  // large enough to ride the stream, async copies + depth >= 2 must be
  // strictly faster (simulated time) than the synchronous-copy baseline of
  // the same configuration.
  auto workload = tdo::pb::make_workload("gemm", tdo::pb::Preset::kPaper);
  ASSERT_TRUE(workload.is_ok());
  auto run = [&](bool async) {
    tdo::pb::HarnessOptions options;
    options.runtime.stream.depth = 2;
    options.runtime.xfer.async_copies = async;
    const auto report = tdo::pb::run_cim(*workload, options);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_TRUE(report->correct);
    if (async) {
      EXPECT_GT(report->copies_enqueued, 0u) << "no copy rode the stream";
      // Engine DMA contention is always modeled now; the overlap credit is
      // bounded by the copy channel's idle window, never the raw bytes.
      EXPECT_LE(report->overlapped_copy_bytes, report->copy_bytes);
    } else {
      EXPECT_EQ(report->copies_enqueued, 0u);
    }
    return report->runtime;
  };
  const auto synchronous = run(false);
  const auto asynchronous = run(true);
  EXPECT_LT(asynchronous.picoseconds(), synchronous.picoseconds());
}

}  // namespace
}  // namespace tdo::rt
