// Integration tests: runtime BLAS calls end-to-end through driver, context
// registers, micro-engine, crossbar, and back to shared memory. Results are
// checked against float references within the analytic quantization bound.
#include "runtime/cim_blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/fixed_point.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;
using testing::random_matrix;
using testing::ref_gemm;
using testing::ref_gemv;

/// Quantization error bound for one output element of a length-k dot product
/// scaled by alpha (plus one beta*c rounding, negligible).
[[nodiscard]] double gemm_error_bound(double max_a, double max_b, std::size_t k,
                                      float alpha) {
  return std::abs(alpha) * support::dot_quant_error_bound(max_a, max_b, k) +
         1e-3;
}

TEST(BlasTest, InitIsRequiredBeforeAnyCall) {
  Platform p;
  auto va = p.runtime().malloc_device(64);
  EXPECT_FALSE(va.is_ok());
  EXPECT_EQ(va.status().code(), support::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  EXPECT_TRUE(p.runtime().malloc_device(64).is_ok());
}

TEST(BlasTest, InitRejectsUnknownDevice) {
  Platform p;
  EXPECT_FALSE(p.runtime().init(3).is_ok());
}

TEST(BlasTest, SmallGemmMatchesReferenceWithinQuantBound) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 12, n = 9, k = 17;
  const auto a = random_matrix(m * k, 2.0, 1);
  const auto b = random_matrix(k * n, 3.0, 2);
  auto c = random_matrix(m * n, 1.0, 3);

  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.upload(c);

  const float alpha = 1.5f, beta = 0.5f;
  ASSERT_TRUE(p.runtime()
                  .sgemm(m, n, k, alpha, va_a, k, va_b, n, beta, va_c, n)
                  .is_ok());

  ref_gemm(m, n, k, alpha, a, k, b, n, beta, c, n);
  const auto got = p.read_floats(va_c, m * n);
  const double bound = gemm_error_bound(2.0, 3.0, k, alpha);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got[i], c[i], bound) << "element " << i;
  }
}

TEST(BlasTest, GemmWithStationaryAMatchesReference) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 10, n = 14, k = 11;
  const auto a = random_matrix(m * k, 1.0, 7);
  const auto b = random_matrix(k * n, 1.0, 8);
  auto c = std::vector<float>(m * n, 0.0f);

  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kA)
                  .is_ok());

  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
  const auto got = p.read_floats(va_c, m * n);
  const double bound = gemm_error_bound(1.0, 1.0, k, 1.0f);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got[i], c[i], bound) << "element " << i;
  }
}

TEST(BlasTest, OversizedGemmIsTiledAcrossCrossbar) {
  // Crossbar is 256x256; use k and n beyond it to force internal tiling.
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 5, n = 300, k = 270;
  const auto a = random_matrix(m * k, 1.0, 11);
  const auto b = random_matrix(k * n, 1.0, 12);
  auto c = std::vector<float>(m * n, 0.0f);

  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());

  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
  const auto got = p.read_floats(va_c, m * n);
  const double bound = gemm_error_bound(1.0, 1.0, k, 1.0f);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got[i], c[i], bound) << "element " << i;
  }
  // Tiling must have produced more than one accelerator job.
  EXPECT_GT(p.runtime().stats().tile_jobs, 1u);
}

TEST(BlasTest, GemvNoTransposeMatchesReference) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 40, n = 23;
  const auto a = random_matrix(m * n, 1.5, 21);
  const auto x = random_matrix(n, 1.0, 22);
  auto y = random_matrix(m, 1.0, 23);

  const auto va_a = p.upload(a);
  const auto va_x = p.upload(x);
  const auto va_y = p.upload(y);

  ASSERT_TRUE(
      p.runtime().sgemv(false, m, n, 2.0f, va_a, n, va_x, 0.25f, va_y).is_ok());

  ref_gemv(false, m, n, 2.0f, a, n, x, 0.25f, y);
  const auto got = p.read_floats(va_y, m);
  const double bound = gemm_error_bound(1.5, 1.0, n, 2.0f);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(got[i], y[i], bound);
}

TEST(BlasTest, GemvTransposeMatchesReference) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 31, n = 19;
  const auto a = random_matrix(m * n, 1.0, 31);
  const auto x = random_matrix(m, 1.0, 32);
  auto y = std::vector<float>(n, 0.0f);

  const auto va_a = p.upload(a);
  const auto va_x = p.upload(x);
  const auto va_y = p.device_zeros(n);

  ASSERT_TRUE(
      p.runtime().sgemv(true, m, n, 1.0f, va_a, n, va_x, 0.0f, va_y).is_ok());

  ref_gemv(true, m, n, 1.0f, a, n, x, 0.0f, y);
  const auto got = p.read_floats(va_y, n);
  const double bound = gemm_error_bound(1.0, 1.0, m, 1.0f);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(got[j], y[j], bound);
}

TEST(BlasTest, BatchedGemmSharedStationarySkipsReprogramming) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 16, k = 16;
  const auto a = random_matrix(m * k, 1.0, 41);   // shared input
  const auto b = random_matrix(k * n, 1.0, 42);
  const auto e = random_matrix(k * n, 1.0, 43);

  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_e = p.upload(e);
  const auto va_c = p.device_zeros(m * n);
  const auto va_d = p.device_zeros(m * n);

  // C = A*B and D = A*E with stationary A: A must be written exactly once.
  const std::vector<GemmBatchItem> items = {{va_a, va_b, va_c},
                                            {va_a, va_e, va_d}};
  ASSERT_TRUE(p.runtime()
                  .sgemm_batched(m, n, k, 1.0f, items, k, n, 0.0f, n,
                                 cim::StationaryOperand::kA)
                  .is_ok());

  // Weight writes: stationary A^T tile is k x m = 256 weights, written once.
  EXPECT_EQ(p.accel().report().weight_writes8, k * m);

  std::vector<float> c(m * n, 0.0f), d(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
  ref_gemm(m, n, k, 1.0f, a, k, e, n, 0.0f, d, n);
  const auto got_c = p.read_floats(va_c, m * n);
  const auto got_d = p.read_floats(va_d, m * n);
  const double bound = gemm_error_bound(1.0, 1.0, k, 1.0f);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got_c[i], c[i], bound);
    EXPECT_NEAR(got_d[i], d[i], bound);
  }
}

TEST(BlasTest, NaiveSeparateGemmsWriteTwiceAsManyWeights) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 16, n = 16, k = 16;
  const auto a = random_matrix(m * k, 1.0, 41);
  const auto b = random_matrix(k * n, 1.0, 42);
  const auto e = random_matrix(k * n, 1.0, 43);

  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_e = p.upload(e);
  const auto va_c = p.device_zeros(m * n);
  const auto va_d = p.device_zeros(m * n);

  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_e, n, 0.0f, va_d, n).is_ok());

  // Naive mapping programs B then E: 2 * (k x n) weights.
  EXPECT_EQ(p.accel().report().weight_writes8, 2 * k * n);
}

TEST(BlasTest, HostToDevAndBackRoundTrips) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto data = random_matrix(1000, 5.0, 51);
  // Host-side buffer (scattered pages is fine for host memory).
  auto host_va = p.system().mmu().allocate(data.size() * sizeof(float));
  ASSERT_TRUE(host_va.is_ok());
  // Functionally fill the host buffer page by page.
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto pa = p.system().mmu().translate(*host_va + i * 4);
    ASSERT_TRUE(pa.is_ok());
    p.system().memory().write_scalar<float>(*pa, data[i]);
  }
  auto dev = p.runtime().malloc_device(data.size() * sizeof(float));
  ASSERT_TRUE(dev.is_ok());
  ASSERT_TRUE(
      p.runtime().host_to_dev(*dev, *host_va, data.size() * 4).is_ok());
  const auto round = p.read_floats(*dev, data.size());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(round[i], data[i]);
  EXPECT_EQ(p.runtime().stats().bytes_copied, data.size() * 4);
}

TEST(BlasTest, ZeroDimensionIsRejected) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto va = p.device_zeros(16);
  EXPECT_FALSE(
      p.runtime().sgemm(0, 4, 4, 1.0f, va, 4, va, 4, 0.0f, va, 4).is_ok());
  EXPECT_FALSE(p.runtime().sgemv(false, 0, 4, 1.0f, va, 4, va, 0.0f, va).is_ok());
}

TEST(BlasTest, FreeUnknownBufferFails) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  EXPECT_FALSE(p.runtime().free_device(0xdead000).is_ok());
}

TEST(BlasTest, AcceleratorTimeAdvancesWithJob) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 8, n = 8, k = 8;
  const auto a = random_matrix(m * k, 1.0, 61);
  const auto b = random_matrix(k * n, 1.0, 62);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());
  // Weight phase: 8 rows x 2.5us = 20us; stream: 8 GEMVs x 1us = 8us.
  const auto total = p.system().global_time();
  EXPECT_GT(total.microseconds(), 28.0);
  // Host spun during the job, so host elapsed time covers the job end.
  EXPECT_GE(p.system().cpu().elapsed().ticks() + 1000,
            p.system().events().now());
}

TEST(BlasTest, EnergyIsAttributedToAcceleratorCategories) {
  Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::size_t m = 8, n = 8, k = 8;
  const auto a = random_matrix(m * k, 1.0, 71);
  const auto b = random_matrix(k * n, 1.0, 72);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(
      p.runtime().sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n).is_ok());

  const auto snap = p.system().snapshot();
  // Write energy: k*n = 64 weights x 200 pJ = 12.8 nJ.
  EXPECT_NEAR(snap.energy_or("cim.energy.write").nanojoules(), 12.8, 1e-6);
  // Compute energy: m*k*n = 512 MACs x 200 fJ = 0.1024 nJ.
  EXPECT_NEAR(snap.energy_or("cim.energy.compute").nanojoules(), 0.1024, 1e-6);
  // Mixed signal: 8 GEMVs x 3.9 nJ.
  EXPECT_NEAR(snap.energy_or("cim.energy.mixed_signal").nanojoules(), 31.2, 1e-6);
  EXPECT_GT(snap.energy_or("cim.energy.buffers").picojoules(), 0.0);
  EXPECT_GT(snap.energy_or("cim.energy.dma").picojoules(), 0.0);
}

}  // namespace
}  // namespace tdo::rt
