// Tests for peer-to-peer residency migration (CimRuntime::migrate_residency):
// destination adoption as a hit, bit-exact equivalence of the dev->dev and
// host-bounce paths, argument validation, and the WAR/RAW hazards around a
// migrating resident tile — a host update racing the migration must degrade
// to a reprogram with the fresh bytes, never serve stale weights.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/cim_blas.hpp"
#include "runtime/residency.hpp"
#include "support/fixed_point.hpp"
#include "testing/fixture.hpp"

namespace tdo::rt {
namespace {

using testing::Platform;
using testing::random_matrix;
using testing::ref_gemm;

RuntimeConfig migration_config() {
  RuntimeConfig config;
  config.stream.depth = 2;
  config.xfer.min_async_bytes = 1024;
  return config;
}

/// The dispatch path's residency key for a single-tile stationary-B GEMM
/// (n, k within one crossbar tile; ldb == n).
WeightKey tile_key(Platform& p, sim::VirtAddr va_b,
                   const std::vector<float>& b_data, std::uint64_t n,
                   std::uint64_t k) {
  auto pa_b = p.system().mmu().translate(va_b);
  EXPECT_TRUE(pa_b.is_ok());
  double max_abs = 0.0;
  for (const float v : b_data) {
    max_abs = std::max(max_abs, static_cast<double>(std::fabs(v)));
  }
  WeightKey key;
  key.rect = Rect{*pa_b, n * 4, n * 4, k};
  key.ld = n;
  key.scale = support::QuantScale::for_max_abs(max_abs).scale;
  key.layout = cim::StationaryOperand::kB;
  key.rows = static_cast<std::uint32_t>(k);
  key.cols = static_cast<std::uint32_t>(n);
  return key;
}

/// Primes one cacheable tile on device 0, migrates it to device 1 over the
/// requested path, reruns the GEMM, and returns the post-migration output.
std::vector<float> migrate_and_run(bool peer_to_peer, bool* adopted) {
  Platform p{migration_config(), {}, {}, /*accelerators=*/2};
  EXPECT_TRUE(p.runtime().init(0).is_ok());
  const std::uint64_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 31);
  const auto b = random_matrix(k * n, 1.0, 32);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);

  EXPECT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  const WeightKey key = tile_key(p, va_b, b, n, k);
  const auto placed = p.runtime().residency().peek(key);
  EXPECT_TRUE(placed.has_value());
  const int to_device = placed->device == 0 ? 1 : 0;

  EXPECT_TRUE(
      p.runtime().migrate_residency(key, to_device, peer_to_peer).is_ok());
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  const auto rehomed = p.runtime().residency().peek(key);
  EXPECT_TRUE(rehomed.has_value());
  EXPECT_EQ(rehomed->device, to_device);
  EXPECT_EQ(p.runtime().residency().report().migrations, 1u);

  // The follow-up request must ride the migrated tile as a hit on the
  // destination crossbar, not reprogram.
  const auto before = p.runtime().residency().report();
  const std::uint64_t dest_jobs =
      p.accel(static_cast<std::size_t>(to_device)).jobs_completed();
  EXPECT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  const auto after = p.runtime().residency().report();
  *adopted =
      after.hits == before.hits + 1 && after.misses == before.misses &&
      p.accel(static_cast<std::size_t>(to_device)).jobs_completed() > dest_jobs;

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b, n, 0.0f, want, n);
  const auto got = p.read_floats(va_c, m * n);
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
  }
  EXPECT_LT(err, 0.15);
  return got;
}

TEST(MigrationTest, PeerToPeerMigrationAdoptsTileOnDestination) {
  bool adopted = false;
  (void)migrate_and_run(/*peer_to_peer=*/true, &adopted);
  EXPECT_TRUE(adopted) << "migrated tile did not serve as a destination hit";
}

TEST(MigrationTest, HostBounceMigrationMatchesPeerToPeerBitExact) {
  bool adopted_p2p = false, adopted_bounce = false;
  const auto p2p = migrate_and_run(/*peer_to_peer=*/true, &adopted_p2p);
  const auto bounce = migrate_and_run(/*peer_to_peer=*/false, &adopted_bounce);
  EXPECT_TRUE(adopted_p2p);
  EXPECT_TRUE(adopted_bounce);
  ASSERT_EQ(p2p.size(), bounce.size());
  for (std::size_t i = 0; i < p2p.size(); ++i) {
    ASSERT_EQ(p2p[i], bounce[i])
        << "dev->dev and host-bounce migrations diverged at element " << i;
  }
}

TEST(MigrationTest, RejectsNonResidentTilesAndBadTargets) {
  Platform p{migration_config(), {}, {}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::uint64_t n = 64, k = 64;
  const auto b = random_matrix(k * n, 1.0, 41);
  const auto va_b = p.upload(b);
  const WeightKey key = tile_key(p, va_b, b, n, k);
  // Never primed: nothing to migrate.
  EXPECT_EQ(p.runtime().migrate_residency(key, 1).code(),
            support::StatusCode::kNotFound);
  // Device range is validated before anything else.
  EXPECT_EQ(p.runtime().migrate_residency(key, 7).code(),
            support::StatusCode::kInvalidArgument);
  EXPECT_EQ(p.runtime().migrate_residency(key, -1).code(),
            support::StatusCode::kInvalidArgument);
}

TEST(MigrationTest, MigrationToTheResidentDeviceIsANoOp) {
  Platform p{migration_config(), {}, {}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::uint64_t m = 16, n = 64, k = 64;
  const auto va_a = p.upload(random_matrix(m * k, 1.0, 51));
  const auto b = random_matrix(k * n, 1.0, 52);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  const WeightKey key = tile_key(p, va_b, b, n, k);
  const auto placed = p.runtime().residency().peek(key);
  ASSERT_TRUE(placed.has_value());
  EXPECT_TRUE(p.runtime().migrate_residency(key, placed->device).is_ok());
  EXPECT_EQ(p.runtime().residency().report().migrations, 0u);
}

TEST(MigrationTest, MidMigrationInvalidationDegradesToReprogram) {
  // Cache-level protocol check: if a host write invalidates the entry after
  // the migration peeked it (WAR on the source rectangle), rehome finds
  // nothing to move and reports failure — the destination then simply
  // reprograms on the next use instead of serving a stale shadow.
  Platform p{migration_config(), {}, {}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  auto& cache = p.runtime().residency();
  WeightKey key;
  key.rect = Rect{0x1000, 256, 256, 64};
  key.ld = 64;
  key.scale = 1.0;
  key.layout = cim::StationaryOperand::kB;
  key.rows = 64;
  key.cols = 64;
  const auto acquired = cache.acquire(key, /*device=*/0);
  ASSERT_TRUE(acquired.cached);
  const Rect shadow{0x9000, 256, 256, 64};
  // The racing invalidation lands between the peek and the re-home.
  cache.invalidate_overlapping(key.rect);
  EXPECT_FALSE(cache.rehome(key, 0, 1, 0, shadow, 64));
  // The next acquire is a miss: the caller reprograms with fresh bytes.
  EXPECT_FALSE(cache.acquire(key, 0).hit);
}

TEST(MigrationTest, HostUpdateAfterMigrationReprogramsWithFreshBytes) {
  // End-to-end RAW across the migrated tile: once the weights change under
  // the migrated entry, the next request must recompute from the new bytes
  // (a miss + reprogram), not serve the stale staging shadow.
  Platform p{migration_config(), {}, {}, /*accelerators=*/2};
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const std::uint64_t m = 32, n = 64, k = 64;
  const auto a = random_matrix(m * k, 1.0, 61);
  const auto b_old = random_matrix(k * n, 1.0, 62);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b_old);
  const auto va_c = p.device_zeros(m * n);
  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  const WeightKey key = tile_key(p, va_b, b_old, n, k);
  ASSERT_TRUE(p.runtime().migrate_residency(key, 1).is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());

  // Host pushes a new weight set through the runtime copy path; the
  // rectangle hazard invalidates the migrated entry.
  const auto b_new = random_matrix(k * n, 2.0, 63);
  auto src = p.system().mmu().allocate(k * n * 4);
  ASSERT_TRUE(src.is_ok());
  p.write_floats(*src, b_new);
  ASSERT_TRUE(p.runtime().host_to_dev(va_b, *src, k * n * 4).is_ok());

  const auto before = p.runtime().residency().report();
  ASSERT_TRUE(p.runtime()
                  .sgemm_with_stationary(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f,
                                         va_c, n, cim::StationaryOperand::kB,
                                         /*cacheable=*/true)
                  .is_ok());
  ASSERT_TRUE(p.runtime().synchronize().is_ok());
  EXPECT_EQ(p.runtime().residency().report().misses, before.misses + 1)
      << "stale migrated tile served after a host update";

  std::vector<float> want(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, a, k, b_new, n, 0.0f, want, n);
  const auto got = p.read_floats(va_c, m * n);
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(got[i] - want[i])));
  }
  EXPECT_LT(err, 0.3) << "result did not reflect the updated weights";
}

}  // namespace
}  // namespace tdo::rt
