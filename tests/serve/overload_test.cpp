// Overload-control tests for the serving scheduler: deadline-class shed
// ordering (batch first, never interactive), tenant rotation and tail drops,
// weighted-DRR share enforcement, idle-tenant eviction of the per-tenant
// maps, and a seeded end-to-end overload run (ServeOverloadFuzz, re-run by
// CI with extra TDO_FUZZ_SEED values) where rate-triggered shedding must
// keep the interactive tail strictly below the no-shed baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "serve/scheduler.hpp"
#include "support/rng.hpp"
#include "testing/fixture.hpp"

namespace tdo::serve {
namespace {

using support::Duration;
using tdo::testing::Platform;
using tdo::testing::random_matrix;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

/// One shared weight set, one activation buffer wide enough for the heavy
/// shape (light requests read a leading-row prefix), and rotating output
/// pools. Overload tests drive load, not numerics — outputs are reused.
struct OverloadFixture {
  static constexpr std::uint64_t kHeavyM = 64;
  static constexpr std::uint64_t kLightM = 8;
  Platform platform;
  std::uint64_t n = 64, k = 64;
  sim::VirtAddr va_a = 0;
  sim::VirtAddr weights = 0;
  std::vector<sim::VirtAddr> heavy_out, light_out;

  explicit OverloadFixture(std::size_t accelerators = 1)
      : platform{{}, {}, {}, accelerators} {
    EXPECT_TRUE(platform.runtime().init(0).is_ok());
    va_a = platform.upload(random_matrix(kHeavyM * k, 1.0, 7));
    weights = platform.upload(random_matrix(k * n, 1.0, 500));
    for (int i = 0; i < 8; ++i) {
      heavy_out.push_back(platform.device_zeros(kHeavyM * n));
      light_out.push_back(platform.device_zeros(kLightM * n));
    }
  }

  [[nodiscard]] Request make(std::uint32_t tenant, std::uint64_t m,
                             sim::VirtAddr c, DeadlineClass deadline) const {
    Request r;
    r.tenant = tenant;
    r.deadline = deadline;
    r.m = m;
    r.n = n;
    r.k = k;
    r.a = va_a;
    r.b = weights;
    r.c = c;
    r.lda = k;
    r.ldb = n;
    r.ldc = n;
    return r;
  }
  [[nodiscard]] Request heavy(std::uint32_t tenant, int i,
                              DeadlineClass deadline = DeadlineClass::kBatch)
      const {
    return make(tenant, kHeavyM,
                heavy_out[static_cast<std::size_t>(i) % heavy_out.size()],
                deadline);
  }
  [[nodiscard]] Request light(
      std::uint32_t tenant, int i,
      DeadlineClass deadline = DeadlineClass::kInteractive) const {
    return make(tenant, kLightM,
                light_out[static_cast<std::size_t>(i) % light_out.size()],
                deadline);
  }
};

TEST(OverloadShedTest, ShedsBatchThenStandardNeverInteractive) {
  OverloadFixture fx;
  SchedulerParams params;
  params.batching = false;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    ASSERT_TRUE(
        scheduler.submit(fx.light(tenant, 0, DeadlineClass::kInteractive))
            .is_ok());
    ASSERT_TRUE(scheduler.submit(fx.light(tenant, 1, DeadlineClass::kStandard))
                    .is_ok());
    ASSERT_TRUE(scheduler.submit(fx.heavy(tenant, 2, DeadlineClass::kBatch))
                    .is_ok());
  }

  // A tiny excess drops exactly one request, and it is batch class.
  EXPECT_EQ(scheduler.shed_excess(1.0), 1u);
  auto dropped = scheduler.take_completions();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].outcome, Completion::Outcome::kShed);
  EXPECT_EQ(dropped[0].deadline, DeadlineClass::kBatch);

  // An unbounded excess takes everything else sheddable — all remaining
  // batch and standard work — but never touches interactive.
  EXPECT_EQ(scheduler.shed_excess(1e18), 3u);
  dropped = scheduler.take_completions();
  ASSERT_EQ(dropped.size(), 3u);
  for (const auto& completion : dropped) {
    EXPECT_EQ(completion.outcome, Completion::Outcome::kShed);
    EXPECT_NE(completion.deadline, DeadlineClass::kInteractive);
  }
  EXPECT_EQ(scheduler.report().shed, 4u);

  // The interactive pair survives and completes normally.
  ASSERT_TRUE(scheduler.drain().is_ok());
  EXPECT_EQ(scheduler.report().completed, 2u);
  const auto completions = scheduler.take_completions();
  ASSERT_EQ(completions.size(), 2u);
  for (const auto& completion : completions) {
    EXPECT_EQ(completion.outcome, Completion::Outcome::kDone);
    EXPECT_EQ(completion.deadline, DeadlineClass::kInteractive);
  }
}

TEST(OverloadShedTest, ShedRotatesAcrossTenantsAndTakesQueueTails) {
  OverloadFixture fx;
  SchedulerParams params;
  params.batching = false;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  // Two batch-class requests per tenant; record ids in submission order.
  std::vector<std::vector<std::uint64_t>> ids(2);
  for (std::uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (int i = 0; i < 2; ++i) {
      auto id = scheduler.submit(fx.heavy(tenant, i));
      ASSERT_TRUE(id.is_ok());
      ids[tenant].push_back(*id);
    }
  }
  // Excess worth just over one heavy request: two drops, rotated across the
  // tenants (one each) and taken from each tenant's queue TAIL (the newer
  // request — least sunk queueing investment).
  const double one_heavy = static_cast<double>(fx.heavy(0, 0).macs());
  EXPECT_EQ(scheduler.shed_excess(one_heavy + 1.0), 2u);
  const auto dropped = scheduler.take_completions();
  ASSERT_EQ(dropped.size(), 2u);
  std::vector<std::uint64_t> victims;
  for (const auto& completion : dropped) victims.push_back(completion.id);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<std::uint64_t>{ids[0][1], ids[1][1]}));
  ASSERT_TRUE(scheduler.drain().is_ok());
  EXPECT_EQ(scheduler.report().completed, 2u);  // each tenant's head survived
}

TEST(OverloadDrrTest, WeightedSharesFollowWeightsWhileBacklogged) {
  // Two backlogged tenants at weights 3 and 1 in the same class: while both
  // have queued work, completions must interleave in a 3:1 share (within the
  // 15% tolerance the overload bench gates on). One accelerator and no
  // batching make completion order follow pull order exactly.
  OverloadFixture fx{1};
  SchedulerParams params;
  params.batching = false;
  params.admission.adaptive = false;
  params.max_queue_per_tenant = 128;
  Scheduler scheduler{params, fx.platform.runtime()};
  scheduler.set_tenant_weight(7, 3);  // registration path
  const int kPerTenant = 60;
  for (int i = 0; i < kPerTenant; ++i) {
    ASSERT_TRUE(
        scheduler.submit(fx.light(7, i, DeadlineClass::kStandard)).is_ok());
    Request competitor = fx.light(9, i, DeadlineClass::kStandard);
    competitor.weight = 1;  // request-carried path
    ASSERT_TRUE(scheduler.submit(competitor).is_ok());
  }
  ASSERT_TRUE(scheduler.drain().is_ok());
  const auto completions = scheduler.take_completions();
  ASSERT_EQ(completions.size(), static_cast<std::size_t>(2 * kPerTenant));
  // Both tenants stay backlogged through the first kPerTenant completions
  // (the weight-3 tenant drains last at completion 80 of 120).
  int favored = 0;
  int competitor = 0;
  for (int i = 0; i < kPerTenant; ++i) {
    EXPECT_EQ(completions[static_cast<std::size_t>(i)].outcome,
              Completion::Outcome::kDone);
    if (completions[static_cast<std::size_t>(i)].tenant == 7u) {
      favored += 1;
    } else {
      competitor += 1;
    }
  }
  ASSERT_GT(competitor, 0);
  const double ratio = static_cast<double>(favored) / competitor;
  EXPECT_GE(ratio, 3.0 * 0.85) << favored << ":" << competitor;
  EXPECT_LE(ratio, 3.0 * 1.15) << favored << ":" << competitor;
}

TEST(OverloadEvictionTest, IdleTenantsAgeOutOfThePerTenantMaps) {
  OverloadFixture fx;
  SchedulerParams params;
  params.batching = false;
  params.admission.adaptive = false;
  params.tenant_idle_timeout = Duration::from_us(1.0e4);
  Scheduler scheduler{params, fx.platform.runtime()};
  constexpr std::uint32_t kTenants = 64;
  for (std::uint32_t tenant = 0; tenant < kTenants; ++tenant) {
    ASSERT_TRUE(scheduler
                    .submit(fx.light(tenant, static_cast<int>(tenant),
                                     DeadlineClass::kStandard))
                    .is_ok());
  }
  ASSERT_TRUE(scheduler.drain().is_ok());
  EXPECT_EQ(scheduler.report().completed, kTenants);
  EXPECT_EQ(scheduler.tenant_count(), kTenants);  // idle but not yet timed out
  EXPECT_EQ(scheduler.tenant_latency(0).count(), 1u);

  // Leap simulated time past the idle timeout: the next pump evicts every
  // tenant — state and latency histogram both.
  auto& events = fx.platform.system().events();
  events.run_until(events.now() + Duration::from_us(2.0e4).ticks());
  ASSERT_TRUE(scheduler.pump().is_ok());
  EXPECT_EQ(scheduler.tenant_count(), 0u);
  EXPECT_EQ(scheduler.tenant_latency(0).count(), 0u);

  // A re-appearing tenant re-registers from scratch.
  ASSERT_TRUE(scheduler.submit(fx.light(3, 0, DeadlineClass::kStandard))
                  .is_ok());
  ASSERT_TRUE(scheduler.drain().is_ok());
  EXPECT_EQ(scheduler.tenant_count(), 1u);
  EXPECT_EQ(scheduler.tenant_latency(3).count(), 1u);
}

/// Paced open-loop run at ~3x the measured service rate: batch-heavy flood
/// from one tenant plus a light interactive stream from another. Returns the
/// overload-phase interactive p99 and the scheduler report.
struct OverloadOutcome {
  double interactive_p99_ps = 0.0;
  std::uint64_t interactive_done = 0;
  std::uint64_t interactive_shed = 0;
  ServeReport report;
};

void run_overload(bool shed_enabled, std::uint64_t seed,
                  OverloadOutcome* out) {
  OverloadFixture fx{1};
  SchedulerParams params;
  params.shed.enabled = shed_enabled;
  params.batcher.max_batch = 4;
  params.batcher.max_wait = Duration::from_us(10.0);
  // Static admission knobs: the shedder's capacity estimate is the
  // scheduler's own service EWMA, so adaptive admission is off here — under
  // overload its dispatch-to-done observations inflate the device EWMA,
  // retune min_macs_per_write upward, and flip singletons onto the
  // synchronous host path, which serializes the driver thread and spikes the
  // interactive tail in whichever run happens to dispatch more singletons.
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  auto& events = fx.platform.system().events();

  // Warm the admission EWMAs (device_ps_per_mac needs observed launches at
  // the sites in play) and measure the uncontended heavy service time.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(scheduler.submit(fx.heavy(0, i)).is_ok());
    ASSERT_TRUE(scheduler.drain().is_ok());
    ASSERT_TRUE(scheduler.submit(fx.light(1, i)).is_ok());
    ASSERT_TRUE(scheduler.drain().is_ok());
  }
  const sim::Tick measure_start = events.now();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.submit(fx.heavy(0, i)).is_ok());
    ASSERT_TRUE(scheduler.drain().is_ok());
  }
  const sim::Tick heavy_service =
      std::max<sim::Tick>((events.now() - measure_start) / 8, 1);
  (void)scheduler.take_completions();
  scheduler.reset_latency_stats();

  // Overload schedule: heavy arrivals at 3x the service rate, light
  // interactive arrivals at a modest rate across the same horizon, with
  // seeded jitter so CI's extra seeds explore different interleavings.
  support::Rng rng{seed};
  struct Arrival {
    sim::Tick at = 0;
    bool heavy = false;
  };
  constexpr int kHeavy = 96;
  constexpr int kLight = 24;
  const sim::Tick start = events.now();
  const sim::Tick heavy_gap = heavy_service / 3;
  std::vector<Arrival> schedule;
  schedule.reserve(kHeavy + kLight);
  for (int i = 0; i < kHeavy; ++i) {
    const auto jitter = static_cast<sim::Tick>(
        rng.uniform_int(0, static_cast<std::int64_t>(heavy_gap / 4) + 1));
    schedule.push_back(
        Arrival{start + static_cast<sim::Tick>(i) * heavy_gap + jitter, true});
  }
  // Lights span only the first 85% of the heavy horizon so every measured
  // interactive request arrives under sustained overload. Once arrivals
  // stop, the rate EWMA decays, shedding switches off, and the residual
  // backlog coalesces into full-width batches — a drain-down artifact, not
  // the steady state the shed-vs-no-shed comparison is about.
  const sim::Tick light_gap =
      static_cast<sim::Tick>(kHeavy) * heavy_gap * 85 / (100 * kLight);
  for (int i = 0; i < kLight; ++i) {
    const auto jitter = static_cast<sim::Tick>(
        rng.uniform_int(0, static_cast<std::int64_t>(light_gap / 4) + 1));
    schedule.push_back(
        Arrival{start + static_cast<sim::Tick>(i) * light_gap + jitter,
                false});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  std::vector<Completion> completions;
  std::size_t next = 0;
  int sequence = 0;
  while (next < schedule.size()) {
    if (events.now() >= schedule[next].at) {
      const Request request = schedule[next].heavy
                                  ? fx.heavy(0, sequence)
                                  : fx.light(1, sequence);
      sequence += 1;
      ASSERT_TRUE(scheduler.submit(request).is_ok());
      next += 1;
      continue;
    }
    ASSERT_TRUE(scheduler.pump().is_ok());
    for (auto& completion : scheduler.take_completions()) {
      completions.push_back(completion);
    }
    scheduler.advance_to_next_event(schedule[next].at);
  }
  ASSERT_TRUE(scheduler.drain().is_ok());
  for (auto& completion : scheduler.take_completions()) {
    completions.push_back(completion);
  }

  out->report = scheduler.report();
  const auto interactive = scheduler.class_latency(DeadlineClass::kInteractive);
  out->interactive_p99_ps = interactive.quantile(0.99).picoseconds();
  out->interactive_done = interactive.count();
  for (const auto& completion : completions) {
    if (completion.outcome == Completion::Outcome::kShed &&
        completion.deadline == DeadlineClass::kInteractive) {
      out->interactive_shed += 1;
    }
  }
}

TEST(ServeOverloadFuzz, RateTriggeredShedKeepsInteractiveTailBelowNoShed) {
  const std::uint64_t seed = fuzz_seed();
  OverloadOutcome with_shed;
  OverloadOutcome no_shed;
  run_overload(true, seed, &with_shed);
  run_overload(false, seed, &no_shed);

  // The arrival-rate trigger fired and shed real work — but never a single
  // interactive request.
  EXPECT_GT(with_shed.report.shed, 0u);
  EXPECT_EQ(with_shed.interactive_shed, 0u);
  EXPECT_EQ(no_shed.report.shed, 0u);

  // Every interactive request ran in both runs (shedding only ever touched
  // lower classes), and the shed run's interactive tail strictly beats the
  // no-shed baseline — the entire point of dropping batch work.
  ASSERT_GT(with_shed.interactive_done, 0u);
  ASSERT_EQ(with_shed.interactive_done, no_shed.interactive_done);
  EXPECT_LT(with_shed.interactive_p99_ps, no_shed.interactive_p99_ps)
      << "shed p99 " << with_shed.interactive_p99_ps / 1e6 << "us vs no-shed "
      << no_shed.interactive_p99_ps / 1e6 << "us";
}

}  // namespace
}  // namespace tdo::serve
