// Serving-scheduler tests: batch formation, residency-affinity placement,
// adaptive admission, multi-tenant fairness, and a seeded randomized stress
// layer (ServeSchedulerFuzz, re-run by CI with extra TDO_FUZZ_SEED values)
// that diffs every scheduled request against a float reference.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "support/fixed_point.hpp"
#include "testing/fixture.hpp"

namespace tdo::serve {
namespace {

using support::Duration;
using tdo::testing::Platform;
using tdo::testing::random_matrix;
using tdo::testing::ref_gemm;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

[[nodiscard]] double gemm_error_bound(double max_a, double max_b,
                                      std::size_t k) {
  return support::dot_quant_error_bound(max_a, max_b, k) + 1e-3;
}

/// A request against one weight set, outputs into a caller-owned C buffer.
Request make_request(std::uint32_t tenant, std::uint64_t m, std::uint64_t n,
                     std::uint64_t k, sim::VirtAddr a, sim::VirtAddr b,
                     sim::VirtAddr c,
                     DeadlineClass deadline = DeadlineClass::kStandard) {
  Request r;
  r.tenant = tenant;
  r.deadline = deadline;
  r.m = m;
  r.n = n;
  r.k = k;
  r.a = a;
  r.b = b;
  r.c = c;
  r.lda = k;
  r.ldb = n;
  r.ldc = n;
  return r;
}

// --- batcher unit behaviour ---

TEST(BatcherTest, CoalescesByKeyAndClosesOnSize) {
  Batcher batcher{BatcherParams{.max_batch = 3,
                                .max_wait = Duration::from_us(100.0)}};
  Request a = make_request(0, 8, 64, 64, 0x1000, 0x2000, 0x3000);
  Request other_weights = make_request(0, 8, 64, 64, 0x1000, 0x9000, 0x4000);
  const Duration t0 = Duration::from_us(1.0);
  batcher.add(a, t0);
  batcher.add(other_weights, t0);
  batcher.add(a, t0);
  EXPECT_TRUE(batcher.take_ready(t0).empty());  // nothing full, nothing aged
  batcher.add(a, t0);                           // third same-key: closes
  auto ready = batcher.take_ready(t0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].requests.size(), 3u);
  EXPECT_EQ(batcher.pending(), 1u);  // the other-weights singleton stays open
}

TEST(BatcherTest, ClosesOnAgeAndOrdersByClass) {
  Batcher batcher{BatcherParams{.max_batch = 8,
                                .max_wait = Duration::from_us(10.0)}};
  const Duration t0 = Duration::from_us(1.0);
  batcher.add(make_request(0, 8, 64, 64, 0x1000, 0x2000, 0x3000,
                           DeadlineClass::kBatch),
              t0);
  batcher.add(make_request(1, 8, 64, 64, 0x1000, 0x5000, 0x6000,
                           DeadlineClass::kInteractive),
              Duration::from_us(2.0));
  EXPECT_TRUE(batcher.take_ready(Duration::from_us(5.0)).empty());
  ASSERT_TRUE(batcher.next_close_time().has_value());
  EXPECT_DOUBLE_EQ(batcher.next_close_time()->microseconds(), 11.0);
  auto ready = batcher.take_ready(Duration::from_us(20.0));
  ASSERT_EQ(ready.size(), 2u);
  // Interactive dispatches first even though it arrived later.
  EXPECT_EQ(ready[0].deadline, DeadlineClass::kInteractive);
  EXPECT_EQ(ready[1].deadline, DeadlineClass::kBatch);
}

TEST(BatcherTest, PreemptiveJoinSplitsHalfFullLowerClassBatch) {
  // An interactive join into a >= half-full batch-class batch closes it
  // immediately: promotion alone would still make the newcomer wait out the
  // old members' age clock.
  Batcher batcher{BatcherParams{.max_batch = 4,
                                .max_wait = Duration::from_us(100.0)}};
  const Duration t0 = Duration::from_us(1.0);
  const Request heavy = make_request(0, 8, 64, 64, 0x1000, 0x2000, 0x3000,
                                     DeadlineClass::kBatch);
  batcher.add(heavy, t0);
  batcher.add(heavy, t0);  // size 2 == half of max_batch
  EXPECT_TRUE(batcher.take_ready(t0).empty());
  batcher.add(make_request(1, 8, 64, 64, 0x1000, 0x2000, 0x4000,
                           DeadlineClass::kInteractive),
              t0);
  auto ready = batcher.take_ready(t0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].requests.size(), 3u);
  EXPECT_EQ(ready[0].deadline, DeadlineClass::kInteractive);

  // Same-class joins never split, no matter how full the batch is.
  batcher.add(heavy, t0);
  batcher.add(heavy, t0);
  batcher.add(heavy, t0);
  EXPECT_TRUE(batcher.take_ready(t0).empty());
  EXPECT_EQ(batcher.pending(), 3u);

  // An under-half batch keeps the join-and-promote path: splitting a small
  // batch would forfeit most of the coalescing it was opened for.
  Batcher wide{BatcherParams{.max_batch = 8,
                             .max_wait = Duration::from_us(100.0)}};
  wide.add(heavy, t0);
  wide.add(make_request(1, 8, 64, 64, 0x1000, 0x2000, 0x4000,
                        DeadlineClass::kInteractive),
           t0);
  EXPECT_TRUE(wide.take_ready(t0).empty());  // size 2, half of 8 is 4
  EXPECT_EQ(wide.pending(), 2u);
}

// --- admission controller unit behaviour ---

TEST(AdmissionTest, BootstrapProbesBothPathsThenSettles) {
  AdmissionParams params;
  params.probe_period = 0;
  AdmissionController admission{params, 0.0, 1024};
  const SiteKey site{8, 64, 64, 0};
  EXPECT_EQ(admission.admit(site), AdmitPath::kForceDevice);
  admission.observe(site, /*offloaded=*/true, Duration::from_us(100.0),
                    8 * 64 * 64, 64 * 64);
  EXPECT_EQ(admission.admit(site), AdmitPath::kForceHost);
  admission.observe(site, /*offloaded=*/false, Duration::from_us(50.0),
                    8 * 64 * 64, 64 * 64);
  EXPECT_EQ(admission.admit(site), AdmitPath::kAuto);
}

TEST(AdmissionTest, ThresholdSeparatesHostAndDeviceWinners) {
  AdmissionParams params;
  AdmissionController admission{params, 0.0, 1024};
  const SiteKey small{4, 64, 64, 0};  // intensity 4: host wins
  const SiteKey large{32, 64, 64, 0};  // intensity 32: device wins
  for (int i = 0; i < 4; ++i) {
    admission.observe(small, true, Duration::from_us(200.0), 4 * 64 * 64,
                      64 * 64);
    admission.observe(small, false, Duration::from_us(40.0), 4 * 64 * 64,
                      64 * 64);
    admission.observe(large, true, Duration::from_us(250.0), 32 * 64 * 64,
                      64 * 64);
    admission.observe(large, false, Duration::from_us(400.0), 32 * 64 * 64,
                      64 * 64);
  }
  // Smallest ladder rung above the losing intensity 4 is 8; 32 stays above.
  EXPECT_DOUBLE_EQ(admission.min_macs_per_write(), 8.0);
  EXPECT_GT(admission.report().retunes, 0u);
  // Host probes are deferred (uncounted) when the launch cannot carry them.
  const auto before = admission.report().probes_host;
  const SiteKey fresh{2, 64, 64, 0};
  admission.observe(fresh, true, Duration::from_us(10.0), 2 * 64 * 64,
                    64 * 64);
  EXPECT_EQ(admission.admit(fresh, /*host_probe_ok=*/false), AdmitPath::kAuto);
  EXPECT_EQ(admission.report().probes_host, before);
}

TEST(AdmissionTest, HitPathObservationsDoNotBiasTheKnee) {
  AdmissionParams params;
  AdmissionController admission{params, 0.0, 1024};
  const SiteKey site{4, 64, 64, 0};
  admission.observe(site, true, Duration::from_us(200.0), 4 * 64 * 64,
                    64 * 64);
  admission.observe(site, false, Duration::from_us(40.0), 4 * 64 * 64,
                    64 * 64);
  const double knob = admission.min_macs_per_write();
  // A flood of fast residency-hit launches (cim_writes == 0) must not drag
  // the device EWMA below the host's and reopen offload for misses.
  for (int i = 0; i < 64; ++i) {
    admission.observe(site, true, Duration::from_us(1.0), 4 * 64 * 64, 0);
  }
  EXPECT_DOUBLE_EQ(admission.min_macs_per_write(), knob);
}

// --- scheduler end-to-end ---

struct ServeFixture {
  Platform platform;
  std::uint64_t m, n, k;
  std::vector<sim::VirtAddr> weights;
  std::vector<std::vector<float>> weight_data;
  std::vector<float> input;
  sim::VirtAddr va_a = 0;

  explicit ServeFixture(std::size_t accelerators, std::size_t weight_sets,
                        std::uint64_t m_ = 8, std::uint64_t n_ = 64,
                        std::uint64_t k_ = 64)
      : platform{{}, {}, {}, accelerators}, m{m_}, n{n_}, k{k_} {
    EXPECT_TRUE(platform.runtime().init(0).is_ok());
    for (std::size_t w = 0; w < weight_sets; ++w) {
      weight_data.push_back(random_matrix(k * n, 1.0, 500 + w));
      weights.push_back(platform.upload(weight_data.back()));
    }
    input = random_matrix(m * k, 1.0, 7);
    va_a = platform.upload(input);
  }

  [[nodiscard]] sim::VirtAddr fresh_output() {
    return platform.device_zeros(m * n);
  }

  void check_result(sim::VirtAddr c, std::size_t w) {
    std::vector<float> expected(m * n, 0.0f);
    ref_gemm(m, n, k, 1.0f, input, k, weight_data[w], n, 0.0f, expected, n);
    const auto got = platform.read_floats(c, m * n);
    const double bound = gemm_error_bound(1.0, 1.0, k);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(got[i], expected[i], bound) << "element " << i;
    }
  }
};

TEST(SchedulerTest, BatchedLaunchesCoalesceAndMatchReference) {
  ServeFixture fx{2, 2};
  SchedulerParams params;
  params.batcher.max_batch = 4;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};

  std::vector<std::pair<sim::VirtAddr, std::size_t>> outputs;
  for (int i = 0; i < 8; ++i) {
    const std::size_t w = static_cast<std::size_t>(i) % 2;
    const sim::VirtAddr c = fx.fresh_output();
    outputs.emplace_back(c, w);
    ASSERT_TRUE(scheduler
                    .submit(make_request(0, fx.m, fx.n, fx.k, fx.va_a,
                                         fx.weights[w], c))
                    .is_ok());
  }
  ASSERT_TRUE(scheduler.drain().is_ok());

  const auto report = scheduler.report();
  EXPECT_EQ(report.completed, 8u);
  EXPECT_GT(report.batched_launches, 0u);
  EXPECT_GT(report.coalesced_requests, 0u);
  EXPECT_LT(report.launches, 8u);  // coalescing happened
  const auto completions = scheduler.take_completions();
  EXPECT_EQ(completions.size(), 8u);
  for (const auto& [c, w] : outputs) fx.check_result(c, w);
}

TEST(SchedulerTest, AffinityRoutesRepeatsToResidentAccelerator) {
  ServeFixture fx{2, 2};
  SchedulerParams params;
  params.batcher.max_batch = 2;  // every pair forms one pinned batched launch
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};

  std::map<std::size_t, std::vector<int>> devices_by_weight;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t w = 0; w < 2; ++w) {
      for (int i = 0; i < 2; ++i) {
        const sim::VirtAddr c = fx.fresh_output();
        ASSERT_TRUE(scheduler
                        .submit(make_request(0, fx.m, fx.n, fx.k, fx.va_a,
                                             fx.weights[w], c))
                        .is_ok());
      }
      ASSERT_TRUE(scheduler.drain().is_ok());
      for (const auto& completion : scheduler.take_completions()) {
        EXPECT_EQ(completion.batch_size, 2u);
        devices_by_weight[w].push_back(completion.device);
      }
    }
  }
  const auto report = scheduler.report();
  EXPECT_GT(report.affinity_routed, 0u);
  // After the cold start, each weight set sticks to one accelerator.
  for (const auto& [w, devices] : devices_by_weight) {
    ASSERT_GE(devices.size(), 2u);
    for (std::size_t i = 1; i < devices.size(); ++i) {
      EXPECT_EQ(devices[i], devices[1]) << "weight " << w << " migrated";
    }
  }
  const auto stream = fx.platform.runtime().stream().report();
  EXPECT_GT(stream.residency_hits, 0u);
}

TEST(SchedulerTest, RejectsBeyondTenantQueueBound) {
  ServeFixture fx{1, 1};
  SchedulerParams params;
  params.max_queue_per_tenant = 4;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  int rejected = 0;
  for (int i = 0; i < 8; ++i) {
    const auto id = scheduler.submit(make_request(
        0, fx.m, fx.n, fx.k, fx.va_a, fx.weights[0], fx.fresh_output()));
    if (!id.is_ok()) {
      EXPECT_EQ(id.status().code(), support::StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(scheduler.report().rejected, 4u);
  ASSERT_TRUE(scheduler.drain().is_ok());
  EXPECT_EQ(scheduler.report().completed, 4u);
}

TEST(SchedulerTest, ThreadedPathEnforcesTenantBoundAtPump) {
  // Regression: submit_from_thread lands requests in the submission ring
  // without consulting the per-tenant bound (it cannot — the tenant queues
  // are driver-thread state). pump() must apply the same bound when it
  // drains the ring, rejecting the overflow with completion-style records
  // instead of silently queueing past max_queue_per_tenant.
  ServeFixture fx{1, 1};
  SchedulerParams params;
  params.max_queue_per_tenant = 4;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  constexpr std::size_t kThreads = 2;
  constexpr std::size_t kTotal = 16;
  std::vector<sim::VirtAddr> outputs;
  outputs.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) outputs.push_back(fx.fresh_output());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = t; r < kTotal; r += kThreads) {
        auto id = scheduler.submit_from_thread(make_request(
            0, fx.m, fx.n, fx.k, fx.va_a, fx.weights[0], outputs[r]));
        ASSERT_TRUE(id.is_ok()) << id.status().to_string();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(scheduler.ring_pending(), kTotal);  // the ring accepted them all
  ASSERT_TRUE(scheduler.drain().is_ok());

  const auto report = scheduler.report();
  EXPECT_EQ(report.rejected, kTotal - 4);  // everything past the bound
  EXPECT_EQ(report.completed, 4u);
  std::size_t done = 0;
  std::size_t rejected = 0;
  for (const auto& completion : scheduler.take_completions()) {
    if (completion.outcome == Completion::Outcome::kRejected) {
      rejected += 1;
    } else if (completion.outcome == Completion::Outcome::kDone) {
      done += 1;
    }
  }
  EXPECT_EQ(done, 4u);
  EXPECT_EQ(rejected, kTotal - 4);  // rejections surface as joinable records
}

TEST(SchedulerTest, FailedLaunchDoesNotCountAsLaunched) {
  // A launch whose runtime call errors (here: untranslatable operands) has
  // no completion to match; counting it would skew every launches-derived
  // ratio against phantom work.
  ServeFixture fx{1, 1};
  SchedulerParams params;
  params.batching = false;
  params.admission.adaptive = false;
  Scheduler scheduler{params, fx.platform.runtime()};
  const Request bad = make_request(0, fx.m, fx.n, fx.k, 0xdead0000, 0xbeef0000,
                                   0xcafe0000);
  ASSERT_TRUE(scheduler.submit(bad).is_ok());
  EXPECT_FALSE(scheduler.pump().is_ok());
  EXPECT_EQ(scheduler.report().launches, 0u);
  EXPECT_EQ(scheduler.report().completed, 0u);
}

TEST(SchedulerTest, SecondSchedulerSurvivesFirstSchedulerTeardown) {
  // Two schedulers over one runtime: the completion observers (per-device
  // and host worker pool) are owner-tagged, so destroying the first must not
  // clear the second's registrations. The split config forces the second
  // scheduler's launch to put a CPU stripe on the host worker pool — without
  // the owner tag on the pool observer, that stripe's completion would never
  // log and the drain below would stall.
  rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 0.25;
  config.split.min_macs = 1;
  config.split.pool.workers = 2;
  Platform platform{config, {}, {}, 1};
  ASSERT_TRUE(platform.runtime().init(0).is_ok());
  const std::uint64_t m = 8, n = 64, k = 64;
  const auto weight_data = random_matrix(k * n, 1.0, 500);
  const auto input = random_matrix(m * k, 1.0, 7);
  const sim::VirtAddr vb = platform.upload(weight_data);
  const sim::VirtAddr va = platform.upload(input);
  const sim::VirtAddr vc = platform.device_zeros(m * n);

  SchedulerParams p1;
  p1.batching = false;
  p1.admission.adaptive = false;
  p1.name = "serve1";
  auto first = std::make_unique<Scheduler>(p1, platform.runtime());
  SchedulerParams p2 = p1;
  p2.name = "serve2";
  Scheduler second{p2, platform.runtime()};
  first.reset();  // must not strip `second`'s observers

  ASSERT_TRUE(second.submit(make_request(0, m, n, k, va, vb, vc)).is_ok());
  ASSERT_TRUE(second.drain().is_ok());
  EXPECT_EQ(second.report().completed, 1u);
  // The launch really did ride the pool (pseudo-async split happened).
  EXPECT_GT(platform.runtime().host_pool().jobs_completed(), 0u);
  std::vector<float> expected(m * n, 0.0f);
  ref_gemm(m, n, k, 1.0f, input, k, weight_data, n, 0.0f, expected, n);
  const auto got = platform.read_floats(vc, m * n);
  const double bound = gemm_error_bound(1.0, 1.0, k);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], bound) << "element " << i;
  }
}

/// One tenant's closed-loop traffic: `clients` concurrent requests against
/// `weight`, each client resubmitting on completion until its budget spends.
struct TenantSpec {
  std::uint32_t tenant = 0;
  std::size_t weight = 0;
  int clients = 1;
};

void run_closed_loop(ServeFixture& fx, Scheduler& scheduler,
                     const std::vector<TenantSpec>& specs,
                     int requests_per_client) {
  struct Client {
    std::uint32_t tenant = 0;
    std::size_t weight = 0;
    std::vector<sim::VirtAddr> outputs;
    int submitted = 0;
    bool busy = false;
  };
  std::vector<Client> clients;
  for (const auto& spec : specs) {
    for (int i = 0; i < spec.clients; ++i) {
      Client client;
      client.tenant = spec.tenant;
      client.weight = spec.weight;
      for (int p = 0; p < 4; ++p) client.outputs.push_back(fx.fresh_output());
      clients.push_back(std::move(client));
    }
  }
  std::map<std::uint64_t, std::size_t> owner;
  const std::size_t target = clients.size() * requests_per_client;
  std::size_t completed = 0;
  while (completed < target) {
    bool progressed = false;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      auto& client = clients[i];
      if (client.busy || client.submitted >= requests_per_client) continue;
      const sim::VirtAddr c =
          client.outputs[client.submitted % client.outputs.size()];
      auto id = scheduler.submit(make_request(client.tenant, fx.m, fx.n, fx.k,
                                              fx.va_a,
                                              fx.weights[client.weight], c));
      ASSERT_TRUE(id.is_ok());
      owner[*id] = i;
      client.submitted += 1;
      client.busy = true;
      progressed = true;
    }
    ASSERT_TRUE(scheduler.pump().is_ok());
    for (const auto& completion : scheduler.take_completions()) {
      const auto it = owner.find(completion.id);
      if (it != owner.end()) {
        clients[it->second].busy = false;
        owner.erase(it);
      }
      completed += 1;
      progressed = true;
    }
    if (progressed) continue;
    ASSERT_TRUE(scheduler.advance_to_next_event()) << "scheduler stalled";
  }
  ASSERT_TRUE(scheduler.drain().is_ok());
}

TEST(SchedulerTest, LightTenantTailBoundedUnderTenToOneFlood) {
  // Satellite acceptance: under 2 tenants with 10:1 offered load, the light
  // tenant's p99 stays bounded — within a small factor of what it sees with
  // the flood absent, instead of queueing behind the heavy tenant's backlog.
  const int kRequests = 10;
  SchedulerParams params;
  params.admission.adaptive = false;
  Duration solo_p99;
  {
    ServeFixture fx{2, 2};
    Scheduler scheduler{params, fx.platform.runtime()};
    run_closed_loop(fx, scheduler, {TenantSpec{1, 1, 1}}, kRequests);
    solo_p99 = scheduler.tenant_latency(1).quantile(0.99);
  }
  ServeFixture fx{2, 2};
  Scheduler scheduler{params, fx.platform.runtime()};
  run_closed_loop(fx, scheduler,
                  {TenantSpec{0, 0, 10}, TenantSpec{1, 1, 1}}, kRequests);
  const Duration light_p99 = scheduler.tenant_latency(1).quantile(0.99);
  const Duration heavy_p99 = scheduler.tenant_latency(0).quantile(0.99);
  ASSERT_GT(solo_p99.picoseconds(), 0.0);
  ASSERT_GT(light_p99.picoseconds(), 0.0);
  // Bounded interference: the light tenant's tail grows by at most a small
  // factor, and never beyond the flooding tenant's own tail.
  EXPECT_LE(light_p99.picoseconds(), solo_p99.picoseconds() * 6.0)
      << "light p99 " << light_p99.to_string() << " vs solo "
      << solo_p99.to_string();
  EXPECT_LE(light_p99.picoseconds(), heavy_p99.picoseconds())
      << "light p99 " << light_p99.to_string() << " vs heavy "
      << heavy_p99.to_string();
}

TEST(ServeSchedulerFuzz, RandomizedMultiTenantLoadMatchesReference) {
  const std::uint64_t seed = fuzz_seed();
  support::Rng rng{seed};
  ServeFixture fx{2, 3};
  SchedulerParams params;
  params.batcher.max_batch = 4;
  params.batcher.max_wait = Duration::from_us(15.0);
  params.admission.probe_period = 8;
  Scheduler scheduler{params, fx.platform.runtime()};

  struct Pending {
    sim::VirtAddr c = 0;
    std::size_t weight = 0;
  };
  std::map<std::uint64_t, Pending> pending;
  const int total = 60;
  int submitted = 0;
  std::size_t completed = 0;
  auto& events = fx.platform.system().events();
  while (completed < static_cast<std::size_t>(total)) {
    // Random burst of submissions across tenants and weight sets; every
    // request gets a fresh C buffer so each one is independently checkable.
    const int burst =
        submitted < total
            ? static_cast<int>(rng.uniform_int(0, 3))
            : 0;
    for (int i = 0; i < burst && submitted < total; ++i) {
      const std::size_t w = static_cast<std::size_t>(rng.uniform_int(0, 2));
      const auto tenant = static_cast<std::uint32_t>(rng.uniform_int(0, 3));
      const auto deadline = static_cast<DeadlineClass>(rng.uniform_int(0, 2));
      const sim::VirtAddr c = fx.fresh_output();
      auto request = make_request(tenant, fx.m, fx.n, fx.k, fx.va_a,
                                  fx.weights[w], c, deadline);
      auto id = scheduler.submit(request);
      ASSERT_TRUE(id.is_ok());
      pending[*id] = Pending{c, w};
      ++submitted;
    }
    ASSERT_TRUE(scheduler.pump().is_ok());
    for (const auto& completion : scheduler.take_completions()) {
      ASSERT_TRUE(pending.contains(completion.id));
      completed += 1;
    }
    // Random time advance: sometimes wait for the next actionable point,
    // sometimes leap ahead (run_until, so due completions still retire —
    // advance_to past pending events is outside the event queue's
    // contract).
    if (rng.chance(0.5)) {
      (void)scheduler.advance_to_next_event();
    } else {
      events.run_until(events.now() +
                       static_cast<sim::Tick>(rng.uniform_int(100, 50000)));
    }
  }
  ASSERT_TRUE(scheduler.drain().is_ok());

  // Every request produced the reference result (quantization tolerance),
  // regardless of batching, placement, probing, or fallback decisions.
  EXPECT_EQ(pending.size(), static_cast<std::size_t>(total));
  for (const auto& [id, record] : pending) {
    fx.check_result(record.c, record.weight);
  }
  const auto report = scheduler.report();
  EXPECT_EQ(report.completed, static_cast<std::uint64_t>(total));
  EXPECT_EQ(report.submitted, static_cast<std::uint64_t>(total));
}

TEST(ServeSchedulerFuzz, ThreadedSubmissionMatchesSingleThreadReference) {
  // Satellite (c): N real submitter threads push a seeded request plan
  // through submit_from_thread, and every output buffer must equal — bit
  // for bit — a single-threaded reference run of the same plan. Adaptive
  // admission stays off so both runs take the identical device path (host
  // probes would mix exact float results into one run but not the other);
  // batching and placement may differ between runs, but the device path's
  // per-request numerics depend only on the request's operands.
  const std::uint64_t seed = fuzz_seed();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kTotal = 48;
  struct Plan {
    std::uint32_t tenant = 0;
    std::size_t weight = 0;
    DeadlineClass deadline = DeadlineClass::kStandard;
  };
  std::vector<Plan> plan;
  support::Rng rng{seed};
  for (std::size_t r = 0; r < kTotal; ++r) {
    plan.push_back(Plan{
        static_cast<std::uint32_t>(rng.uniform_int(0, 3)),
        static_cast<std::size_t>(rng.uniform_int(0, 2)),
        static_cast<DeadlineClass>(rng.uniform_int(0, 2))});
  }

  // Both runs build identical fixtures (same seeds, same allocation order),
  // so request contents — including buffer addresses — match exactly.
  const auto run = [&](bool threaded) -> std::vector<std::vector<float>> {
    ServeFixture fx{2, 3};
    SchedulerParams params;
    params.batcher.max_batch = 4;
    params.batcher.max_wait = Duration::from_us(15.0);
    params.admission.adaptive = false;
    Scheduler scheduler{params, fx.platform.runtime()};
    std::vector<sim::VirtAddr> outputs;
    outputs.reserve(kTotal);
    for (std::size_t r = 0; r < kTotal; ++r) {
      outputs.push_back(fx.fresh_output());
    }
    if (threaded) {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (std::size_t r = t; r < kTotal; r += kThreads) {
            auto id = scheduler.submit_from_thread(
                make_request(plan[r].tenant, fx.m, fx.n, fx.k, fx.va_a,
                             fx.weights[plan[r].weight], outputs[r],
                             plan[r].deadline));
            ASSERT_TRUE(id.is_ok()) << id.status().to_string();
          }
        });
      }
      for (auto& thread : threads) thread.join();
      EXPECT_EQ(scheduler.ring_pending(), kTotal);
    } else {
      for (std::size_t r = 0; r < kTotal; ++r) {
        EXPECT_TRUE(scheduler
                        .submit(make_request(plan[r].tenant, fx.m, fx.n, fx.k,
                                             fx.va_a,
                                             fx.weights[plan[r].weight],
                                             outputs[r], plan[r].deadline))
                        .is_ok());
      }
    }
    EXPECT_TRUE(scheduler.drain().is_ok());
    const auto report = scheduler.report();
    EXPECT_EQ(report.submitted, kTotal);
    EXPECT_EQ(report.completed, kTotal);
    EXPECT_EQ(scheduler.take_completions().size(), kTotal);
    std::vector<std::vector<float>> results;
    results.reserve(kTotal);
    for (std::size_t r = 0; r < kTotal; ++r) {
      results.push_back(fx.platform.read_floats(outputs[r], fx.m * fx.n));
      fx.check_result(outputs[r], plan[r].weight);  // and vs the reference
    }
    return results;
  };

  const auto threaded = run(true);
  const auto reference = run(false);
  ASSERT_EQ(threaded.size(), reference.size());
  for (std::size_t r = 0; r < kTotal; ++r) {
    for (std::size_t i = 0; i < threaded[r].size(); ++i) {
      ASSERT_EQ(threaded[r][i], reference[r][i])
          << "request " << r << " element " << i;
    }
  }
}

}  // namespace
}  // namespace tdo::serve
