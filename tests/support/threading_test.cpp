// Thread-parallel support primitives under real OS threads: mutual
// exclusion, exact sharded totals, concurrent histogram recording, and the
// sharded submission ring's ordering/backpressure contract. These tests are
// the ones the ThreadSanitizer CI job leans on hardest.
#include "support/threading.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace tdo::support {
namespace {

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  std::uint64_t shared = 0;  // plain (non-atomic): the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinGuard guard{lock};
        shared += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SpinLockTest, TryLockFailsWhileHeldAndContendedCounts) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
  // An uncontended lock/unlock sequence must not count as contended.
  EXPECT_EQ(lock.contended(), 0u);
}

TEST(ThreadShardTest, IdIsStablePerThreadAndDistinctAcrossThreads) {
  const std::size_t main_id = thread_shard_id();
  EXPECT_EQ(thread_shard_id(), main_id);  // stable within a thread
  std::vector<std::size_t> ids(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < ids.size(); ++t) {
    threads.emplace_back([&ids, t] {
      ids[t] = thread_shard_id();
      EXPECT_EQ(thread_shard_id(), ids[t]);
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<std::size_t> all = ids;
  all.push_back(main_id);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "thread shard ids must be process-unique";
}

TEST(ShardedCounterTest, TotalsAreExactUnderConcurrentWriters) {
  ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.add();
      counter.add(5);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * (kIters + 5));
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ShardedLatencyHistogramTest, ConcurrentAddsAllLandInTheMerge) {
  ShardedLatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kIters; ++i) {
        histogram.add(Duration::from_us(1.0 + t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  const LatencyHistogram merged = histogram.merged();
  EXPECT_EQ(merged.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  // All samples sit in [1 us, 4 us]; the merged quantiles must too (bucket
  // midpoints can sit slightly above the largest raw sample).
  EXPECT_GE(merged.quantile(0.0).microseconds(), 0.9);
  EXPECT_LE(merged.quantile(1.0).microseconds(), 4.5);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(ShardedRingTest, DrainPreservesPerThreadPushOrderAndLosesNothing) {
  // Value = producer * 1e6 + sequence, so we can verify per-producer FIFO
  // order after the shard-ordered concatenation. Capacity covers the whole
  // load even if every producer happens to wrap onto one shard.
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kItems = 3000;
  ShardedRing<std::uint64_t> ring{kThreads * kItems};
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        ASSERT_TRUE(ring.push(t * 1000000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ring.pending(), kThreads * kItems);
  const std::vector<std::uint64_t> drained = ring.drain_all();
  ASSERT_EQ(drained.size(), kThreads * kItems);
  EXPECT_EQ(ring.pending(), 0u);
  std::vector<std::uint64_t> next_seq(kThreads, 0);
  for (const std::uint64_t value : drained) {
    const std::uint64_t producer = value / 1000000;
    ASSERT_LT(producer, kThreads);
    EXPECT_EQ(value % 1000000, next_seq[producer]);
    next_seq[producer] += 1;
  }
  for (std::uint64_t t = 0; t < kThreads; ++t) EXPECT_EQ(next_seq[t], kItems);
}

TEST(ShardedRingTest, PerShardCapacityBoundsAndRecoversAfterDrain) {
  ShardedRing<int> ring{4};  // single-threaded: everything lands in one shard
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99)) << "5th push into a capacity-4 shard must fail";
  EXPECT_EQ(ring.pending(), 4u);
  const auto drained = ring.drain_all();
  ASSERT_EQ(drained.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(drained[i], i);
  EXPECT_TRUE(ring.push(5));  // space freed by the drain
  EXPECT_EQ(ring.pending(), 1u);
}

TEST(ShardedRingTest, ConcurrentProducersWithLiveConsumer) {
  // Single consumer drains while producers run — the ring's actual serving
  // deployment shape. Every pushed item must surface exactly once.
  ShardedRing<std::uint64_t> ring;
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kItems = 5000;
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!ring.push(t * 1000000 + i)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> seen;
  while (seen.size() < kThreads * kItems) {
    for (std::uint64_t value : ring.drain_all()) seen.push_back(value);
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ring.pending(), 0u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  ASSERT_EQ(seen.size(), kThreads * kItems);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(seen[t * kItems + i], t * 1000000 + i);
    }
  }
}

}  // namespace
}  // namespace tdo::support
