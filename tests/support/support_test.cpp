// Unit tests for the support layer: units, status, stats, quantization,
// tables.
#include <gtest/gtest.h>

#include <sstream>

#include "support/fixed_point.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace tdo::support {
namespace {

using namespace tdo::support::literals;

TEST(UnitsTest, EnergyConversionsRoundTrip) {
  const Energy e = Energy::from_nj(3.9);
  EXPECT_DOUBLE_EQ(e.picojoules(), 3900.0);
  EXPECT_DOUBLE_EQ(e.microjoules(), 0.0039);
  EXPECT_DOUBLE_EQ((200_fJ).picojoules(), 0.2);
  EXPECT_DOUBLE_EQ((1.5_mJ).joules(), 1.5e-3);
}

TEST(UnitsTest, EnergyArithmeticAndRatios) {
  const Energy a = 100_pJ;
  const Energy b = 50_pJ;
  EXPECT_DOUBLE_EQ((a + b).picojoules(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).picojoules(), 50.0);
  EXPECT_DOUBLE_EQ((a * 3.0).picojoules(), 300.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
}

TEST(UnitsTest, DurationTicksAndFrequency) {
  const Frequency f = 1.2_GHz;
  EXPECT_NEAR(f.period().picoseconds(), 833.333, 0.001);
  EXPECT_NEAR(f.cycles(1200.0).microseconds(), 1.0, 1e-9);
  EXPECT_NEAR(f.cycles_in(Duration::from_us(1.0)), 1200.0, 1e-6);
  EXPECT_EQ((2.5_us).ticks(), 2'500'000u);
}

TEST(UnitsTest, EdpCombinesEnergyAndTime) {
  EXPECT_DOUBLE_EQ(energy_delay_product(Energy::from_joule(2.0),
                                        Duration::from_sec(3.0)),
                   6.0);
}

TEST(UnitsTest, HumanReadableStrings) {
  EXPECT_EQ((3.9_nJ).to_string(), "3.9 nJ");
  EXPECT_EQ(Duration::from_us(2.5).to_string(), "2.5 us");
  EXPECT_EQ(Frequency::from_ghz(1.2).to_string(), "1.2 GHz");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status s = invalid_argument("bad");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  StatusOr<int> good = 42;
  EXPECT_TRUE(good.is_ok());
  EXPECT_EQ(*good, 42);
  StatusOr<int> bad = not_found("nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(StatsTest, SnapshotDeltasIsolateRoi) {
  StatsRegistry registry;
  Counter c;
  EnergyAccumulator e;
  registry.register_counter("x", &c);
  registry.register_energy("e", &e);
  c.add(10);
  e.add(Energy::from_pj(5));
  const auto before = registry.snapshot();
  c.add(32);
  e.add(Energy::from_pj(7));
  const auto delta = registry.snapshot().delta_since(before);
  EXPECT_EQ(delta.counter_or("x"), 32u);
  EXPECT_DOUBLE_EQ(delta.energy_or("e").picojoules(), 7.0);
  EXPECT_EQ(delta.counter_or("missing", 99), 99u);
}

TEST(QuantTest, RoundTripWithinHalfStep) {
  const QuantScale q = QuantScale::for_max_abs(2.0);
  for (const double v : {-2.0, -1.3333, -0.001, 0.0, 0.5, 1.9999, 2.0}) {
    const auto code = q.quantize(v);
    EXPECT_NEAR(q.dequantize(code), v, q.scale * 0.5 + 1e-12);
  }
}

TEST(QuantTest, SaturatesAtRange) {
  const QuantScale q = QuantScale::for_max_abs(1.0);
  EXPECT_EQ(q.quantize(50.0), 127);
  EXPECT_EQ(q.quantize(-50.0), -127);
}

TEST(QuantTest, NibbleSplitJoinRoundTrips) {
  for (int w = -128; w <= 127; ++w) {
    const auto v = static_cast<std::int8_t>(w);
    if (v == -128) continue;  // magnitude 128 does not fit two nibbles
    EXPECT_EQ(join_nibbles(split_nibbles(v)), v) << w;
  }
}

TEST(QuantTest, DotErrorBoundIsSane) {
  // Bound must exceed the worst observed quantization error on random data.
  Rng rng{7};
  const std::size_t n = 64;
  std::vector<float> a(n), b(n);
  for (auto& v : a) v = rng.uniform_f(-2.0f, 2.0f);
  for (auto& v : b) v = rng.uniform_f(-3.0f, 3.0f);
  const QuantScale qa = QuantScale::for_max_abs(2.0);
  const QuantScale qb = QuantScale::for_max_abs(3.0);
  double exact = 0.0;
  std::int64_t fixed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    exact += static_cast<double>(a[i]) * b[i];
    fixed += static_cast<std::int64_t>(qa.quantize(a[i])) * qb.quantize(b[i]);
  }
  const double approx = static_cast<double>(fixed) * qa.scale * qb.scale;
  EXPECT_LE(std::abs(exact - approx), dot_quant_error_bound(2.0, 3.0, n));
}

TEST(LatencyHistogramTest, ExactQuantilesOnSmallValues) {
  // Values below 32 ps land in exact unit buckets: nearest-rank quantiles of
  // a known distribution must be exact.
  LatencyHistogram h;
  for (int v = 1; v <= 20; ++v) h.add(Duration::from_ps(v));
  EXPECT_EQ(h.count(), 20u);
  EXPECT_DOUBLE_EQ(h.quantile(0.50).picoseconds(), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95).picoseconds(), 19.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00).picoseconds(), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0).picoseconds(), 1.0);
  EXPECT_DOUBLE_EQ(h.min().picoseconds(), 1.0);
  EXPECT_DOUBLE_EQ(h.max().picoseconds(), 20.0);
  EXPECT_DOUBLE_EQ(h.mean().picoseconds(), 10.5);
}

TEST(LatencyHistogramTest, BoundedRelativeErrorOnMicrosecondScale) {
  // Serving latencies live in the us..ms range; the log-linear buckets
  // guarantee <= 1/32 relative error per sample, so nearest-rank quantiles
  // of a uniform grid stay within ~2/32 of the exact answer.
  LatencyHistogram h;
  for (int v = 1; v <= 1000; ++v) h.add(Duration::from_us(v));
  const double tolerance = 2.0 / 32.0;
  EXPECT_NEAR(h.quantile(0.50).microseconds(), 500.0, 500.0 * tolerance);
  EXPECT_NEAR(h.quantile(0.95).microseconds(), 950.0, 950.0 * tolerance);
  EXPECT_NEAR(h.quantile(0.99).microseconds(), 990.0, 990.0 * tolerance);
  EXPECT_DOUBLE_EQ(h.max().microseconds(), 1000.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedPopulation) {
  // Per-accelerator histograms merge bucket-wise: the merged quantiles must
  // equal those of one histogram fed the union of samples.
  LatencyHistogram a, b, both;
  Rng rng{99};
  for (int i = 0; i < 500; ++i) {
    const double us = rng.uniform(1.0, 300.0);
    a.add(Duration::from_us(us));
    both.add(Duration::from_us(us));
  }
  for (int i = 0; i < 500; ++i) {
    const double us = rng.uniform(200.0, 2000.0);
    b.add(Duration::from_us(us));
    both.add(Duration::from_us(us));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  for (const double p : {0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(p).picoseconds(),
                     both.quantile(p).picoseconds())
        << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(a.min().picoseconds(), both.min().picoseconds());
  EXPECT_DOUBLE_EQ(a.max().picoseconds(), both.max().picoseconds());
  EXPECT_DOUBLE_EQ(a.mean().picoseconds(), both.mean().picoseconds());
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.add(Duration::from_us(5.0));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99).picoseconds(), 0.0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(TableTest, PrintsAlignedRows) {
  TextTable table{"demo"};
  table.set_header({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, RatioFormatting) {
  EXPECT_EQ(TextTable::fmt_ratio(612.4), "612x");
  EXPECT_EQ(TextTable::fmt_ratio(32.61), "32.6x");
  EXPECT_EQ(TextTable::fmt_ratio(3.234), "3.23x");
}

}  // namespace
}  // namespace tdo::support
