// Shared test fixture: a small emulated platform (System + Accelerator +
// CimRuntime) plus helpers to move float matrices in and out of simulated
// memory and to compute reference BLAS results.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cim/accelerator.hpp"
#include "runtime/cim_blas.hpp"
#include "sim/system.hpp"
#include "support/rng.hpp"

namespace tdo::testing {

/// Owns a fully wired platform with paper-default parameters. Pass
/// `accelerators > 1` to register extra accelerator instances (distinct
/// PMIO windows and stats prefixes) with the runtime's command stream.
class Platform {
 public:
  explicit Platform(rt::RuntimeConfig config = {},
                    cim::AcceleratorParams accel_params = {},
                    sim::SystemParams system_params = {},
                    std::size_t accelerators = 1)
      : system_{system_params},
        accel_{accel_params, system_},
        runtime_{config, system_, accel_} {
    for (std::size_t i = 1; i < accelerators; ++i) {
      extra_.push_back(std::make_unique<cim::Accelerator>(
          cim::instance_params(accel_params, i), system_));
      runtime_.add_accelerator(*extra_.back());
    }
  }

  [[nodiscard]] sim::System& system() { return system_; }
  [[nodiscard]] cim::Accelerator& accel() { return accel_; }
  [[nodiscard]] cim::Accelerator& accel(std::size_t index) {
    return index == 0 ? accel_ : *extra_[index - 1];
  }
  [[nodiscard]] rt::CimRuntime& runtime() { return runtime_; }

  /// Allocates a device buffer and uploads `data` into it functionally
  /// (no host cost) — tests that care about cost use the runtime copies.
  [[nodiscard]] sim::VirtAddr upload(std::span<const float> data) {
    auto va = runtime_.malloc_device(data.size() * sizeof(float));
    EXPECT_TRUE(va.is_ok()) << va.status().to_string();
    write_floats(*va, data);
    return *va;
  }

  /// Allocates a zero-filled device buffer of `count` floats.
  [[nodiscard]] sim::VirtAddr device_zeros(std::size_t count) {
    const std::vector<float> zeros(count, 0.0f);
    return upload(zeros);
  }

  void write_floats(sim::VirtAddr va, std::span<const float> data) {
    auto pa = system_.mmu().translate(va);
    ASSERT_TRUE(pa.is_ok());
    system_.memory().write(
        *pa, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size() * sizeof(float)));
  }

  [[nodiscard]] std::vector<float> read_floats(sim::VirtAddr va,
                                               std::size_t count) {
    std::vector<float> out(count);
    auto pa = system_.mmu().translate(va);
    EXPECT_TRUE(pa.is_ok());
    system_.memory().read(
        *pa, std::span(reinterpret_cast<std::uint8_t*>(out.data()),
                       count * sizeof(float)));
    return out;
  }

 private:
  sim::System system_;
  cim::Accelerator accel_;
  rt::CimRuntime runtime_;
  std::vector<std::unique_ptr<cim::Accelerator>> extra_;
};

/// Element-wise float I/O through the MMU — safe for buffers whose physical
/// frames are scattered (Platform::write_floats/read_floats translate the
/// base once and assume contiguity).
inline void write_floats_scattered(Platform& p, sim::VirtAddr va,
                                   std::span<const float> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto pa = p.system().mmu().translate(va + i * sizeof(float));
    ASSERT_TRUE(pa.is_ok());
    p.system().memory().write_scalar<float>(*pa, data[i]);
  }
}

[[nodiscard]] inline std::vector<float> read_floats_scattered(
    Platform& p, sim::VirtAddr va, std::size_t count) {
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto pa = p.system().mmu().translate(va + i * sizeof(float));
    EXPECT_TRUE(pa.is_ok());
    out[i] = p.system().memory().read_scalar<float>(*pa);
  }
  return out;
}

/// Row-major reference GEMM: C = alpha*A*B + beta*C.
inline void ref_gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
                     const std::vector<float>& a, std::size_t lda,
                     const std::vector<float>& b, std::size_t ldb, float beta,
                     std::vector<float>& c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a[i * lda + kk]) *
               static_cast<double>(b[kk * ldb + j]);
      }
      c[i * ldc + j] = static_cast<float>(
          alpha * acc + static_cast<double>(beta) * c[i * ldc + j]);
    }
  }
}

/// Reference GEMV: y = alpha*op(A)*x + beta*y.
inline void ref_gemv(bool transpose, std::size_t m, std::size_t n, float alpha,
                     const std::vector<float>& a, std::size_t lda,
                     const std::vector<float>& x, float beta,
                     std::vector<float>& y) {
  if (!transpose) {
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += static_cast<double>(a[i * lda + j]) * static_cast<double>(x[j]);
      }
      y[i] = static_cast<float>(alpha * acc + static_cast<double>(beta) * y[i]);
    }
    return;
  }
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      acc += static_cast<double>(a[i * lda + j]) * static_cast<double>(x[i]);
    }
    y[j] = static_cast<float>(alpha * acc + static_cast<double>(beta) * y[j]);
  }
}

/// Deterministic random matrix in [-range, range].
inline std::vector<float> random_matrix(std::size_t count, double range,
                                        std::uint64_t seed) {
  support::Rng rng{seed};
  std::vector<float> out(count);
  for (float& v : out) {
    v = rng.uniform_f(static_cast<float>(-range), static_cast<float>(range));
  }
  return out;
}

}  // namespace tdo::testing
