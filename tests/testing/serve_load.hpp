// Shared seeded serving load for the observability tests: a two-tier fleet
// (one near accelerator, two far ones behind a 2x link) driven by a closed
// loop of skewed tenants, mirroring bench_serve_loop's traced fleet. The
// trace, metrics, and energy tests all replay the same load so their
// determinism and reconciliation claims are about one well-known timeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "serve/scheduler.hpp"
#include "testing/fixture.hpp"
#include "topo/topology.hpp"

namespace tdo::testing {

inline std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

/// The bench's traced-fleet runtime knobs at test scale: pseudo-async split
/// on with a tiny MAC gate so host-pool stripe spans appear, and a low
/// async-copy floor so activation uploads ride the DMA engine.
inline rt::RuntimeConfig traced_serve_config() {
  rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 1.0 / 16.0;
  config.split.min_macs = 1;
  config.split.pool.workers = 2;
  config.xfer.min_async_bytes = 256;
  return config;
}

/// Two-tier serving platform parameterized by runtime config so tests can
/// toggle individual subsystems (e.g. the pseudo-async split) and observe
/// the effect in the trace.
struct ServeFixture {
  topo::Link link;
  topo::Topology topology;
  Platform platform;
  std::uint64_t m = 8, n = 64, k = 64;
  std::vector<sim::VirtAddr> weights;
  sim::VirtAddr va_a = 0;

  explicit ServeFixture(rt::RuntimeConfig config, std::uint64_t seed,
                        std::size_t weight_sets = 2)
      : link{[] {
          topo::LinkParams lp;
          lp.latency_multiplier = 2.0;
          lp.name = "farlink";
          return lp;
        }()},
        platform{std::move(config), {}, {}, 3} {
    topology.add_device(topo::Topology::kNearTier);
    for (std::size_t d = 1; d < 3; ++d) {
      topology.add_device(topo::Topology::kFarTier, &link);
      platform.accel(d).set_response_link(&link);
    }
    platform.runtime().set_topology(&topology);
    EXPECT_TRUE(platform.runtime().init(0).is_ok());
    for (std::size_t w = 0; w < weight_sets; ++w) {
      weights.push_back(platform.upload(random_matrix(k * n, 1.0, seed + w)));
    }
    va_a = platform.upload(random_matrix(m * k, 1.0, seed + 99));
  }
};

/// Everything one seeded closed-loop run produced, for cross-run diffing.
struct ServeOutcome {
  /// (id, done tick, device) per completion, sorted by id.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, int>> completions;
  serve::ServeReport report;
  sim::Tick end_tick = 0;
};

/// Seeded closed-loop serving run with skewed tenant affinity: tenant 0's
/// five clients hammer weight set 0 (interactive), tenant 1's two clients
/// serve weight set 1 (standard). Every request's activations arrive through
/// the measured upload path. Pass `traced` when the Tracer is started so its
/// ring buffers are drained as the load runs.
inline ServeOutcome run_serve_load(ServeFixture& fx, topo::Placement placement,
                                   bool traced = false) {
  using serve::DeadlineClass;
  using serve::Request;
  using serve::Scheduler;
  using serve::SchedulerParams;

  SchedulerParams params;
  params.placement = placement;
  params.batcher.max_batch = 2;
  params.batcher.max_wait = support::Duration::from_us(15.0);
  params.admission.adaptive = false;
  params.admission.probe_period = 0;
  Scheduler scheduler{params, fx.platform.runtime()};

  struct Client {
    std::uint32_t tenant = 0;
    std::size_t weight = 0;
    DeadlineClass deadline = DeadlineClass::kStandard;
    std::vector<sim::VirtAddr> outputs;
    int submitted = 0;
    bool busy = false;
  };
  std::vector<Client> clients;
  const auto add_clients = [&](std::uint32_t tenant, std::size_t weight,
                               DeadlineClass deadline, int count) {
    for (int i = 0; i < count; ++i) {
      Client client;
      client.tenant = tenant;
      client.weight = weight;
      client.deadline = deadline;
      for (int p = 0; p < 2; ++p) {
        client.outputs.push_back(fx.platform.device_zeros(fx.m * fx.n));
      }
      clients.push_back(std::move(client));
    }
  };
  add_clients(0, 0, DeadlineClass::kInteractive, 5);
  add_clients(1, 1, DeadlineClass::kStandard, 2);

  constexpr int kRequestsPerClient = 3;
  const std::size_t target = clients.size() * kRequestsPerClient;
  ServeOutcome out;
  std::map<std::uint64_t, std::size_t> owner;
  std::size_t completed = 0;
  while (completed < target) {
    bool progressed = false;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      auto& client = clients[i];
      if (client.busy || client.submitted >= kRequestsPerClient) continue;
      Request request;
      request.tenant = client.tenant;
      request.deadline = client.deadline;
      request.m = fx.m;
      request.n = fx.n;
      request.k = fx.k;
      request.a = fx.va_a;
      request.b = fx.weights[client.weight];
      request.c = client.outputs[client.submitted % client.outputs.size()];
      request.lda = fx.k;
      request.ldb = fx.n;
      request.ldc = fx.n;
      EXPECT_TRUE(scheduler
                      .upload(request.a, request.a,
                              fx.m * fx.k * sizeof(float))
                      .is_ok());
      auto id = scheduler.submit(request);
      EXPECT_TRUE(id.is_ok()) << id.status().to_string();
      if (!id.is_ok()) return out;
      owner[*id] = i;
      client.submitted += 1;
      client.busy = true;
      progressed = true;
    }
    EXPECT_TRUE(scheduler.pump().is_ok());
    if (traced) obs::Tracer::instance().pump();
    for (const auto& completion : scheduler.take_completions()) {
      const auto it = owner.find(completion.id);
      if (it != owner.end()) {
        clients[it->second].busy = false;
        owner.erase(it);
      }
      out.completions.emplace_back(completion.id, completion.done.ticks(),
                                   completion.device);
      completed += 1;
      progressed = true;
    }
    if (progressed) continue;
    if (!scheduler.advance_to_next_event()) {
      ADD_FAILURE() << "scheduler stalled";
      return out;
    }
  }
  EXPECT_TRUE(scheduler.drain().is_ok());
  for (const auto& completion : scheduler.take_completions()) {
    out.completions.emplace_back(completion.id, completion.done.ticks(),
                                 completion.device);
  }
  std::sort(out.completions.begin(), out.completions.end());
  out.report = scheduler.report();
  out.end_tick = fx.platform.system().events().now();
  return out;
}

}  // namespace tdo::testing
