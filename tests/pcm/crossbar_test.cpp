// Unit tests for the PCM crossbar: programming, signed fixed-point GEMV
// exactness, wear accounting, and noise behaviour.
#include "pcm/crossbar.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace tdo::pcm {
namespace {

[[nodiscard]] Crossbar small_crossbar(std::uint32_t rows = 8,
                                      std::uint32_t cols = 8) {
  CrossbarParams params;
  params.rows = rows;
  params.cols = cols;
  return Crossbar{params};
}

TEST(CrossbarTest, StoresAndReadsBackSigned8BitWeights) {
  Crossbar xbar = small_crossbar();
  const std::vector<std::int8_t> row = {-128, -127, -1, 0, 1, 63, 64, 127};
  xbar.write_row(0, row);
  for (std::size_t c = 0; c < row.size(); ++c) {
    EXPECT_EQ(xbar.weight_at(0, static_cast<std::uint32_t>(c)), row[c])
        << "column " << c;
  }
}

TEST(CrossbarTest, GemvMatchesExactIntegerDotProduct) {
  Crossbar xbar = small_crossbar();
  const std::vector<std::int8_t> w0 = {1, -2, 3, -4, 5, -6, 7, -8};
  const std::vector<std::int8_t> w1 = {127, -127, 64, -64, 32, -32, 0, 1};
  xbar.write_row(0, w0);
  xbar.write_row(1, w1);

  const std::vector<std::int8_t> in = {3, -5};
  const GemvResult result = xbar.gemv(in, /*active_rows=*/2, /*active_cols=*/8);
  ASSERT_EQ(result.acc.size(), 8u);
  for (std::uint32_t c = 0; c < 8; ++c) {
    const std::int32_t expected = 3 * w0[c] + (-5) * w1[c];
    EXPECT_EQ(result.acc[c], expected) << "column " << c;
  }
}

TEST(CrossbarTest, GemvHandlesExtremeValuesWithoutOverflow) {
  Crossbar xbar = small_crossbar(4, 4);
  const std::vector<std::int8_t> row(4, 127);
  for (std::uint32_t r = 0; r < 4; ++r) xbar.write_row(r, row);
  const std::vector<std::int8_t> in(4, 127);
  const GemvResult result = xbar.gemv(in, 4, 4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(result.acc[c], 4 * 127 * 127);
  }
}

TEST(CrossbarTest, UnprogrammedColumnsContributeZero) {
  Crossbar xbar = small_crossbar();
  // Never programmed: the offset-corrected result of any input must be the
  // dot product with the stored weights, which are all "-128 offset" zeros
  // only after programming; fresh cells hold level 0 == offset-encoded -128.
  const std::vector<std::int8_t> in = {1, 2, 3};
  const GemvResult result = xbar.gemv(in, 3, 4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(result.acc[c], (1 + 2 + 3) * -128);
  }
}

TEST(CrossbarTest, WearAccountingCountsEveryProgrammingPulse) {
  Crossbar xbar = small_crossbar(4, 4);
  const std::vector<std::int8_t> row = {1, 2, 3, 4};
  EXPECT_EQ(xbar.write_row(0, row), 8u);  // 4 weights x 2 nibble cells
  EXPECT_EQ(xbar.total_cell_writes(), 8u);
  // Rewriting the same values still wears the cells (RESET+SET sequence).
  xbar.write_row(0, row);
  EXPECT_EQ(xbar.total_cell_writes(), 16u);
  EXPECT_EQ(xbar.max_cell_writes(), 2u);
}

TEST(CrossbarTest, PartialRowWriteOnlyTouchesPrefix) {
  Crossbar xbar = small_crossbar(4, 8);
  const std::vector<std::int8_t> row = {9, 9};
  EXPECT_EQ(xbar.write_row(1, row), 4u);  // 2 weights x 2 cells
  EXPECT_EQ(xbar.weight_at(1, 0), 9);
  EXPECT_EQ(xbar.weight_at(1, 1), 9);
  EXPECT_EQ(xbar.total_cell_writes(), 4u);
}

TEST(CrossbarTest, ClearTailProgramsWholeRow) {
  Crossbar xbar = small_crossbar(2, 4);
  const std::vector<std::int8_t> row = {5};
  EXPECT_EQ(xbar.write_row(0, row, /*clear_tail=*/true), 8u);
  EXPECT_EQ(xbar.weight_at(0, 0), 5);
  for (std::uint32_t c = 1; c < 4; ++c) EXPECT_EQ(xbar.weight_at(0, c), 0);
}

TEST(CrossbarTest, ReadNoisePerturbsButTracksIdealResult) {
  CrossbarParams params;
  params.rows = 16;
  params.cols = 4;
  params.cell.read_noise_sigma = 0.01;
  Crossbar xbar{params};
  const std::vector<std::int8_t> row(4, 100);
  for (std::uint32_t r = 0; r < 16; ++r) xbar.write_row(r, row);
  const std::vector<std::int8_t> in(16, 50);
  support::Rng rng{42};
  const GemvResult noisy = xbar.gemv(in, 16, 4, &rng);
  const std::int32_t ideal = 16 * 50 * 100;
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_NE(noisy.acc[c], 0);
    // 1% device noise must stay well within 10% of the ideal accumulation.
    EXPECT_NEAR(static_cast<double>(noisy.acc[c]), static_cast<double>(ideal),
                0.1 * ideal);
  }
}

TEST(CrossbarTest, WornOutDetectionAfterEnduranceLimit) {
  CrossbarParams params;
  params.rows = 1;
  params.cols = 1;
  params.cell.endurance_writes = 3;
  Crossbar xbar{params};
  const std::vector<std::int8_t> row = {1};
  EXPECT_EQ(xbar.worn_cells(), 0u);
  xbar.write_row(0, row);
  xbar.write_row(0, row);
  EXPECT_EQ(xbar.worn_cells(), 0u);
  xbar.write_row(0, row);
  EXPECT_EQ(xbar.worn_cells(), 2u);  // both nibble cells hit the limit
}

class CrossbarGemvPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CrossbarGemvPropertyTest, MatchesIntegerReferenceOnRandomData) {
  const auto [rows, cols, seed] = GetParam();
  CrossbarParams params;
  params.rows = static_cast<std::uint32_t>(rows);
  params.cols = static_cast<std::uint32_t>(cols);
  Crossbar xbar{params};
  support::Rng rng{static_cast<std::uint64_t>(seed)};

  std::vector<std::vector<std::int8_t>> w(rows, std::vector<std::int8_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      w[r][c] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    }
    xbar.write_row(static_cast<std::uint32_t>(r), w[r]);
  }
  std::vector<std::int8_t> in(rows);
  for (auto& v : in) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));

  const GemvResult result = xbar.gemv(in, params.rows, params.cols);
  for (int c = 0; c < cols; ++c) {
    std::int64_t expected = 0;
    for (int r = 0; r < rows; ++r) {
      expected += static_cast<std::int64_t>(in[r]) * w[r][c];
    }
    EXPECT_EQ(result.acc[c], expected) << "col " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossbarGemvPropertyTest,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{7, 3, 2},
                      std::tuple{16, 16, 3}, std::tuple{64, 32, 4},
                      std::tuple{256, 256, 5}, std::tuple{33, 257 - 1, 6}));

}  // namespace
}  // namespace tdo::pcm
