// Tests for the start-gap wear-leveling extension.
#include "pcm/wear_leveling.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace tdo::pcm {
namespace {

TEST(StartGapTest, MappingIsBijectiveInitially) {
  StartGapRemapper remap{8};
  std::set<std::uint32_t> used;
  for (std::uint32_t r = 0; r < 8; ++r) {
    const auto phys = remap.physical_row(r);
    EXPECT_LT(phys, 9u);
    EXPECT_NE(phys, remap.gap_position());
    EXPECT_TRUE(used.insert(phys).second) << "collision at " << r;
  }
}

TEST(StartGapTest, MappingStaysBijectiveAcrossGapMoves) {
  StartGapRemapper remap{8, /*gap_move_interval=*/1};
  for (int move = 0; move < 40; ++move) {
    EXPECT_TRUE(remap.record_write());  // every write moves the gap
    std::set<std::uint32_t> used;
    for (std::uint32_t r = 0; r < 8; ++r) {
      const auto phys = remap.physical_row(r);
      EXPECT_LT(phys, 9u);
      EXPECT_NE(phys, remap.gap_position());
      EXPECT_TRUE(used.insert(phys).second)
          << "collision after move " << move << " row " << r;
    }
  }
}

TEST(StartGapTest, GapMovesOnlyAtInterval) {
  StartGapRemapper remap{4, /*gap_move_interval=*/8};
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(remap.record_write());
  EXPECT_TRUE(remap.record_write());
  EXPECT_EQ(remap.gap_moves(), 1u);
}

TEST(StartGapTest, FullRotationAdvancesStart) {
  StartGapRemapper remap{4, 1};
  EXPECT_EQ(remap.start(), 0u);
  // Gap begins at physical 4; 5 moves wrap it around once.
  for (int i = 0; i < 5; ++i) (void)remap.record_write();
  EXPECT_EQ(remap.start(), 1u);
}

TEST(StartGapTest, SpreadsHotRowWritesAcrossPhysicalRows) {
  // A pathological workload hammers logical row 0. Without wear leveling
  // one physical row takes every write; with start-gap the writes spread.
  StartGapRemapper remap{16, /*gap_move_interval=*/4};
  std::map<std::uint32_t, std::uint64_t> writes_per_physical;
  for (int i = 0; i < 1000; ++i) {
    writes_per_physical[remap.physical_row(0)] += 1;
    (void)remap.record_write();
  }
  // The hot row must have visited a large fraction of the physical rows.
  EXPECT_GE(writes_per_physical.size(), 12u);
  // And no single physical row took more than a third of the writes.
  for (const auto& [row, count] : writes_per_physical) {
    EXPECT_LT(count, 1000u / 3) << "row " << row;
  }
}

class StartGapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StartGapPropertyTest, NeverMapsToGapAndStaysInRange) {
  const auto rows = static_cast<std::uint32_t>(GetParam());
  StartGapRemapper remap{rows, 3};
  for (int step = 0; step < 500; ++step) {
    for (std::uint32_t r = 0; r < rows; ++r) {
      const auto phys = remap.physical_row(r);
      ASSERT_LE(phys, rows);
      ASSERT_NE(phys, remap.gap_position());
    }
    (void)remap.record_write();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StartGapPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 256));

}  // namespace
}  // namespace tdo::pcm
