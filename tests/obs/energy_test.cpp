// Trace-driven energy attribution tests: the integer-femtojoule breakdown
// reconciles *exactly* (segment sum == total, per-source sums == total), it
// agrees with the live double-picojoule accumulators within rounding
// tolerance, the per-class display split conserves every segment's joules,
// and the attribution is mutation-keyed — disabling the pseudo-async split
// moves the host-pool bucket to exactly zero.
#include "obs/energy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.hpp"
#include "testing/serve_load.hpp"

namespace tdo::obs {
namespace {

using tdo::testing::ServeFixture;

struct TraceRun {
  std::vector<TraceEvent> events;
  std::vector<RequestPath> paths;
  support::StatsSnapshot stats;
  std::uint64_t dropped = 0;
};

/// One traced seeded serving run under `config`, with the far link's energy
/// accumulator registered so the live-accumulator cross-check sees every
/// modeled sink (production benches register it the same way; the plain
/// trace tests don't need it).
TraceRun run_traced(rt::RuntimeConfig config, std::uint64_t seed) {
  Tracer::instance().start({});
  ServeFixture fx{std::move(config), seed};
  fx.link.register_stats(fx.platform.system().stats());
  (void)tdo::testing::run_serve_load(fx, topo::Placement::kCallerCentric,
                                     true);
  auto& tracer = Tracer::instance();
  tracer.pump();
  TraceRun run;
  run.events = tracer.sorted_events();
  run.paths = decompose(run.events);
  run.dropped = tracer.dropped();
  run.stats = fx.platform.system().stats().snapshot();
  tracer.stop();
  return run;
}

/// The accumulators the span model mirrors: per-accelerator `.energy.<kind>`
/// sinks, the host worker pool, and the far link. `host.energy` (synchronous
/// host-CPU fallback compute) never emits spans and is deliberately outside
/// the attributable total.
double accumulated_pj(const support::StatsSnapshot& snapshot) {
  double total = 0.0;
  for (const auto& [name, pj] : snapshot.energies_pj) {
    if (name.find(".energy.") != std::string::npos ||
        name == "host_pool.energy" || name == "farlink.energy") {
      total += pj;
    }
  }
  return total;
}

TEST(EnergyTest, SegmentsReconcileExactlyAndMatchAccumulators) {
  const TraceRun run =
      run_traced(tdo::testing::traced_serve_config(), tdo::testing::fuzz_seed());
  ASSERT_EQ(run.dropped, 0u);
  ASSERT_FALSE(run.events.empty());
  const EnergyBreakdown breakdown =
      attribute_energy(run.events, default_energy_params());

  // The exact integer invariant: every attributed femtojoule lands in
  // exactly one segment and exactly one source bucket.
  EXPECT_GT(breakdown.total_fj, 0u);
  EXPECT_GT(breakdown.spans_counted, 0u);
  EXPECT_EQ(breakdown.segment_sum(), breakdown.total_fj);
  EXPECT_EQ(breakdown.engine_write_fj + breakdown.engine_stream_fj +
                breakdown.engine_dma_fj + breakdown.copy_dma_fj +
                breakdown.link_fj + breakdown.host_pool_fj,
            breakdown.total_fj);

  // The traced fleet exercises every modeled sink: PCM programming, crossbar
  // compute, DMA (engine + stream copies), far-link serialization, and the
  // split path's host-pool stripes.
  EXPECT_GT(breakdown.engine_write_fj, 0u);
  EXPECT_GT(breakdown.engine_stream_fj, 0u);
  EXPECT_GT(breakdown.engine_dma_fj + breakdown.copy_dma_fj, 0u);
  EXPECT_GT(breakdown.link_fj, 0u);
  EXPECT_GT(breakdown.host_pool_fj, 0u);

  // Cross-check against the live accumulators (double picojoules): the span
  // replay and the charge-time bookkeeping describe the same joules, so they
  // agree to rounding noise.
  const double span_pj = static_cast<double>(breakdown.total_fj) * 1e-3;
  const double live_pj = accumulated_pj(run.stats);
  EXPECT_GT(live_pj, 0.0);
  EXPECT_LE(std::abs(span_pj - live_pj), 1e-6 * std::max(1.0, live_pj))
      << "span " << span_pj << " pJ vs accumulators " << live_pj << " pJ";

  // The per-class display split conserves each populated segment's joules.
  const PerClassEnergy per_class = per_class_energy(run.paths, breakdown);
  EXPECT_FALSE(per_class.empty());
  std::array<double, kSegmentCount> class_tick_sum{};
  for (const RequestPath& path : run.paths) {
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      class_tick_sum[s] += static_cast<double>(path.seg[s]);
    }
  }
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    double across_classes = 0.0;
    for (const auto& [cls, fj] : per_class) across_classes += fj[s];
    if (class_tick_sum[s] > 0.0) {
      EXPECT_NEAR(across_classes, static_cast<double>(breakdown.seg_fj[s]),
                  1e-6 * std::max(1.0, static_cast<double>(breakdown.seg_fj[s])))
          << "segment " << s;
    } else {
      EXPECT_EQ(across_classes, 0.0) << "segment " << s;
    }
  }
}

TEST(EnergyTest, DisablingSplitMovesHostPoolJoulesToZero) {
  // Mutation-keyed: the host-pool bucket exists if and only if the
  // pseudo-async split ran. With the split disabled the same load still
  // reconciles exactly — the joules just never reach the worker pool.
  rt::RuntimeConfig no_split = tdo::testing::traced_serve_config();
  no_split.split.enabled = false;
  const TraceRun run = run_traced(no_split, tdo::testing::fuzz_seed());
  ASSERT_EQ(run.dropped, 0u);
  const EnergyBreakdown breakdown =
      attribute_energy(run.events, default_energy_params());
  EXPECT_GT(breakdown.total_fj, 0u);
  EXPECT_EQ(breakdown.host_pool_fj, 0u);
  EXPECT_EQ(breakdown.segment_sum(), breakdown.total_fj);
  // The live host-pool accumulator agrees with the trace's verdict.
  const auto it = run.stats.energies_pj.find("host_pool.energy");
  if (it != run.stats.energies_pj.end()) {
    EXPECT_EQ(it->second, 0.0);
  }
}

TEST(EnergyTest, SameSeedSameBreakdown) {
  // attribute_energy is a pure replay of the trace, and the trace itself is
  // deterministic — so the whole breakdown is reproducible field by field.
  const std::uint64_t seed = tdo::testing::fuzz_seed();
  const TraceRun first = run_traced(tdo::testing::traced_serve_config(), seed);
  const TraceRun second = run_traced(tdo::testing::traced_serve_config(), seed);
  const EnergyBreakdown a = attribute_energy(first.events,
                                             default_energy_params());
  const EnergyBreakdown b = attribute_energy(second.events,
                                             default_energy_params());
  EXPECT_EQ(a.seg_fj, b.seg_fj);
  EXPECT_EQ(a.total_fj, b.total_fj);
  EXPECT_EQ(a.spans_counted, b.spans_counted);
  EXPECT_EQ(a.host_pool_fj, b.host_pool_fj);
  EXPECT_EQ(a.link_fj, b.link_fj);
}

}  // namespace
}  // namespace tdo::obs
