// Simulation-time tracing tests: deterministic export (same TDO_FUZZ_SEED =>
// byte-identical JSON), exact critical-path reconciliation (the seven
// segments sum to the end-to-end latency for every request), zero
// perturbation of the simulated timeline when tracing is off, a
// trace-verified check that caller-centric and buffer-centric placement
// route the same skewed load differently, and the scheduler's histogram
// register/unregister hygiene against the stats registry.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.hpp"
#include "serve/scheduler.hpp"
#include "testing/fixture.hpp"
#include "topo/topology.hpp"

namespace tdo::obs {
namespace {

using serve::DeadlineClass;
using serve::Request;
using serve::Scheduler;
using serve::SchedulerParams;
using support::Duration;
using tdo::testing::Platform;
using tdo::testing::random_matrix;

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TDO_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return seed;
  }
  return 20260729ull;
}

/// The bench's traced-fleet runtime knobs at test scale: pseudo-async split
/// on with a tiny MAC gate (serve-sized GEMMs sit below the default) so
/// host-pool stripe spans appear, and a low async-copy floor so the
/// activation uploads ride the DMA engine and book copy-window spans.
rt::RuntimeConfig traced_config() {
  rt::RuntimeConfig config;
  config.split.enabled = true;
  config.split.cpu_fraction = 1.0 / 16.0;
  config.split.min_macs = 1;
  config.split.pool.workers = 2;
  config.xfer.min_async_bytes = 256;
  return config;
}

/// Two-tier serving platform — one near accelerator plus two far ones behind
/// a shared 2x link — mirroring bench_serve_loop's traced fleet.
struct TracedFixture {
  topo::Link link;
  topo::Topology topology;
  Platform platform;
  std::uint64_t m = 8, n = 64, k = 64;
  std::vector<sim::VirtAddr> weights;
  sim::VirtAddr va_a = 0;

  explicit TracedFixture(std::uint64_t seed, std::size_t weight_sets = 2)
      : link{[] {
          topo::LinkParams lp;
          lp.latency_multiplier = 2.0;
          lp.name = "farlink";
          return lp;
        }()},
        platform{traced_config(), {}, {}, 3} {
    topology.add_device(topo::Topology::kNearTier);
    for (std::size_t d = 1; d < 3; ++d) {
      topology.add_device(topo::Topology::kFarTier, &link);
      platform.accel(d).set_response_link(&link);
    }
    platform.runtime().set_topology(&topology);
    EXPECT_TRUE(platform.runtime().init(0).is_ok());
    for (std::size_t w = 0; w < weight_sets; ++w) {
      weights.push_back(platform.upload(random_matrix(k * n, 1.0, seed + w)));
    }
    va_a = platform.upload(random_matrix(m * k, 1.0, seed + 99));
  }
};

/// Everything one seeded closed-loop run produced, for cross-run diffing.
struct Outcome {
  std::string json;
  std::vector<TraceEvent> events;
  std::vector<RequestPath> paths;
  /// (id, done tick, device) per completion, sorted by id.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, int>> completions;
  serve::ServeReport report;
  std::uint64_t dropped = 0;
  sim::Tick end_tick = 0;
};

/// Seeded closed-loop serving run with skewed tenant affinity: tenant 0's
/// five clients hammer weight set 0 (interactive), tenant 1's two clients
/// serve weight set 1 (standard). Every request's activations arrive through
/// the measured upload path so DMA copy windows land in the trace.
Outcome run_load(topo::Placement placement, std::uint64_t seed, bool traced) {
  if (traced) Tracer::instance().start({});
  TracedFixture fx{seed};
  SchedulerParams params;
  params.placement = placement;
  params.batcher.max_batch = 2;
  params.batcher.max_wait = Duration::from_us(15.0);
  params.admission.adaptive = false;
  params.admission.probe_period = 0;
  Scheduler scheduler{params, fx.platform.runtime()};

  struct Client {
    std::uint32_t tenant = 0;
    std::size_t weight = 0;
    DeadlineClass deadline = DeadlineClass::kStandard;
    std::vector<sim::VirtAddr> outputs;
    int submitted = 0;
    bool busy = false;
  };
  std::vector<Client> clients;
  const auto add_clients = [&](std::uint32_t tenant, std::size_t weight,
                               DeadlineClass deadline, int count) {
    for (int i = 0; i < count; ++i) {
      Client client;
      client.tenant = tenant;
      client.weight = weight;
      client.deadline = deadline;
      for (int p = 0; p < 2; ++p) {
        client.outputs.push_back(fx.platform.device_zeros(fx.m * fx.n));
      }
      clients.push_back(std::move(client));
    }
  };
  add_clients(0, 0, DeadlineClass::kInteractive, 5);
  add_clients(1, 1, DeadlineClass::kStandard, 2);

  constexpr int kRequestsPerClient = 3;
  const std::size_t target = clients.size() * kRequestsPerClient;
  Outcome out;
  std::map<std::uint64_t, std::size_t> owner;
  std::size_t completed = 0;
  while (completed < target) {
    bool progressed = false;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      auto& client = clients[i];
      if (client.busy || client.submitted >= kRequestsPerClient) continue;
      Request request;
      request.tenant = client.tenant;
      request.deadline = client.deadline;
      request.m = fx.m;
      request.n = fx.n;
      request.k = fx.k;
      request.a = fx.va_a;
      request.b = fx.weights[client.weight];
      request.c = client.outputs[client.submitted % client.outputs.size()];
      request.lda = fx.k;
      request.ldb = fx.n;
      request.ldc = fx.n;
      EXPECT_TRUE(scheduler
                      .upload(request.a, request.a,
                              fx.m * fx.k * sizeof(float))
                      .is_ok());
      auto id = scheduler.submit(request);
      EXPECT_TRUE(id.is_ok()) << id.status().to_string();
      if (!id.is_ok()) return out;
      owner[*id] = i;
      client.submitted += 1;
      client.busy = true;
      progressed = true;
    }
    EXPECT_TRUE(scheduler.pump().is_ok());
    if (traced) Tracer::instance().pump();
    for (const auto& completion : scheduler.take_completions()) {
      const auto it = owner.find(completion.id);
      if (it != owner.end()) {
        clients[it->second].busy = false;
        owner.erase(it);
      }
      out.completions.emplace_back(completion.id, completion.done.ticks(),
                                   completion.device);
      completed += 1;
      progressed = true;
    }
    if (progressed) continue;
    if (!scheduler.advance_to_next_event()) {
      ADD_FAILURE() << "scheduler stalled";
      return out;
    }
  }
  EXPECT_TRUE(scheduler.drain().is_ok());
  for (const auto& completion : scheduler.take_completions()) {
    out.completions.emplace_back(completion.id, completion.done.ticks(),
                                 completion.device);
  }
  std::sort(out.completions.begin(), out.completions.end());
  out.report = scheduler.report();
  out.end_tick = fx.platform.system().events().now();

  if (traced) {
    auto& tracer = Tracer::instance();
    tracer.pump();
    out.events = tracer.sorted_events();
    out.paths = decompose(out.events);
    out.dropped = tracer.dropped();
    std::ostringstream os;
    tracer.export_json(os);
    out.json = os.str();
    tracer.stop();
  }
  return out;
}

/// Request-span critical devices from the trace, keyed by request id
/// (the `dev` arg: accelerator ordinal + 1, 0 for host/pool completions).
std::map<std::uint64_t, std::uint64_t> critical_devices(const Outcome& out) {
  std::map<std::uint64_t, std::uint64_t> devices;
  for (const auto& event : out.events) {
    if (event.phase != Phase::kSpan || event.name != "request" ||
        event.track.rfind("sched/", 0) != 0) {
      continue;
    }
    std::uint64_t id = 0, dev = 0;
    for (const auto& [key, value] : event.args) {
      if (key == "id") id = value;
      if (key == "dev") dev = value;
    }
    devices[id] = dev;
  }
  return devices;
}

TEST(TraceTest, SameSeedExportsByteIdenticalJson) {
  const std::uint64_t seed = fuzz_seed();
  const Outcome first = run_load(topo::Placement::kCallerCentric, seed, true);
  const Outcome second = run_load(topo::Placement::kCallerCentric, seed, true);
  ASSERT_FALSE(first.json.empty());
  EXPECT_EQ(first.dropped, 0u);
  // Light structural sanity on top of byte equality: the export is the
  // Chrome trace-event envelope Perfetto loads.
  EXPECT_EQ(first.json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(first.json.find("\"traceEvents\""), std::string::npos);
  // Sorted event streams — and therefore the JSON byte stream — match.
  ASSERT_EQ(first.events.size(), second.events.size());
  EXPECT_EQ(first.json, second.json);
}

TEST(TraceTest, SegmentsSumExactlyToEndToEnd) {
  const Outcome out =
      run_load(topo::Placement::kCallerCentric, fuzz_seed(), true);
  ASSERT_EQ(out.paths.size(), out.completions.size());
  bool joined_any = false;
  for (const auto& path : out.paths) {
    EXPECT_EQ(path.segment_sum(), path.e2e())
        << "request " << path.id << " (" << path.cls << ") does not reconcile";
    EXPECT_GT(path.done, path.arrival) << "request " << path.id;
    joined_any = joined_any || path.device_joined;
  }
  // The decomposition is attribution, not bucketing: at least some requests
  // must have joined their completion-defining engine job span.
  EXPECT_TRUE(joined_any);
}

TEST(TraceTest, SpansCoverEveryTrackFamily) {
  const Outcome out =
      run_load(topo::Placement::kCallerCentric, fuzz_seed(), true);
  bool engine = false, dma = false, link = false, sched = false, pool = false;
  for (const auto& event : out.events) {
    if (event.phase != Phase::kSpan) continue;
    engine = engine || event.track.rfind("engine/", 0) == 0;
    dma = dma || event.track.rfind("dma/", 0) == 0;
    link = link || event.track.rfind("link/", 0) == 0;
    sched = sched || event.track.rfind("sched/", 0) == 0;
    pool = pool || event.track.rfind("host_pool/", 0) == 0;
  }
  EXPECT_TRUE(engine) << "no engine job spans";
  EXPECT_TRUE(dma) << "no DMA copy-window spans";
  EXPECT_TRUE(link) << "no far-link response spans";
  EXPECT_TRUE(sched) << "no per-request scheduler spans";
  EXPECT_TRUE(pool) << "no host-pool stripe spans";
}

TEST(TraceTest, TracingOffDoesNotPerturbTheTimeline) {
  // The zero-cost-when-off contract, end to end: the same seeded load with
  // the tracer never started must complete with identical ids, devices, and
  // done ticks, and leave the event queue at the identical final tick.
  const std::uint64_t seed = fuzz_seed();
  const Outcome traced = run_load(topo::Placement::kCallerCentric, seed, true);
  const Outcome off = run_load(topo::Placement::kCallerCentric, seed, false);
  EXPECT_FALSE(enabled());
  EXPECT_EQ(traced.completions, off.completions);
  EXPECT_EQ(traced.end_tick, off.end_tick);
  EXPECT_EQ(traced.report.completed, off.report.completed);
  EXPECT_EQ(traced.report.launches, off.report.launches);
}

TEST(TraceTest, PlacementPoliciesDivergeInTheTrace) {
  // Same skewed load, both placements traced: buffer-centric pins repeats to
  // the accelerator holding their weights (the residency walk), while
  // caller-centric skips the walk entirely and fills the near tier first.
  const std::uint64_t seed = fuzz_seed();
  const Outcome caller =
      run_load(topo::Placement::kCallerCentric, seed, true);
  const Outcome buffer =
      run_load(topo::Placement::kBufferCentric, seed, true);
  EXPECT_EQ(caller.report.affinity_routed, 0u);
  EXPECT_GT(buffer.report.affinity_routed, 0u);
  // Trace-verified: the request spans' critical devices differ between the
  // two policies for at least one request of the identical plan.
  const auto caller_devices = critical_devices(caller);
  const auto buffer_devices = critical_devices(buffer);
  ASSERT_EQ(caller_devices.size(), caller.completions.size());
  ASSERT_EQ(buffer_devices.size(), buffer.completions.size());
  EXPECT_NE(caller_devices, buffer_devices);
}

TEST(StatsRegistryTest, SchedulerHistogramsDetachOnDestruction) {
  Platform platform;
  ASSERT_TRUE(platform.runtime().init(0).is_ok());
  auto& registry = platform.system().stats();
  {
    Scheduler scheduler{SchedulerParams{}, platform.runtime()};
    const auto snap = registry.snapshot();
    EXPECT_TRUE(snap.counters.contains("serve.latency.interactive.count"));
    EXPECT_TRUE(snap.counters.contains("serve.latency.batch.count"));
  }
  // The scheduler died before the registry: its histograms and counters must
  // be gone, and snapshot() must not touch the freed memory.
  const auto after = registry.snapshot();
  EXPECT_FALSE(after.counters.contains("serve.latency.interactive.count"));
  EXPECT_FALSE(after.counters.contains("serve.latency.batch.count"));
  EXPECT_FALSE(after.counters.contains("serve.requests"));
}

}  // namespace
}  // namespace tdo::obs
