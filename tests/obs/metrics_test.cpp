// Simulated-time metrics sampling tests: deterministic export (same
// TDO_FUZZ_SEED => byte-identical metrics JSON and identical SLO breach
// sequences), zero perturbation of the simulated timeline when sampling is
// off, bounded ring-buffer retention with counted evictions, and the
// observe-only SLO burn-rate monitor firing on (and only on) loads that
// actually violate their objective.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/slo.hpp"
#include "testing/serve_load.hpp"

namespace tdo::obs {
namespace {

using tdo::testing::ServeFixture;
using tdo::testing::ServeOutcome;

/// SLO windows sized to the test load (makespan is tens of microseconds, so
/// a 15 us slow window is spanned many times over) with a 1 ns latency
/// target no real completion can meet — the deterministic "must breach"
/// objective. 1 tick = 1 ps throughout.
SloParams tight_slo_params() {
  SloParams params;
  params.fast_window_ticks = 5'000'000;    // 5 us
  params.slow_window_ticks = 15'000'000;   // 15 us
  params.burn_threshold = 1.0;
  params.counter_prefix = "serve";
  return params;
}

struct MetricsOutcome {
  ServeOutcome serve;
  std::string json;
  std::vector<SloBreach> breaches;
  std::vector<std::uint64_t> sample_ticks;
  std::uint64_t evicted = 0;
  /// `obs.slo_breaches` as seen by the final sample (0 when absent).
  std::uint64_t breach_counter_sampled = 0;
};

/// One seeded closed-loop run. With `metrics_on`, the registry samples the
/// platform's stats on the scheduler's own pump grid and a tight-latency
/// interactive SLO is evaluated after every sample.
MetricsOutcome run_metrics_load(std::uint64_t seed, bool metrics_on,
                                MetricsParams mparams = [] {
                                  MetricsParams p;
                                  p.sample_every = 1'000'000;  // 1 us grid
                                  return p;
                                }()) {
  MetricsOutcome out;
  ServeFixture fx{tdo::testing::traced_serve_config(), seed};
  SloMonitor slo{tight_slo_params(),
                 {SloSpec{"interactive", 1'000 /* 1 ns */, -1.0}}};
  auto& registry = MetricsRegistry::instance();
  if (metrics_on) {
    slo.attach(fx.platform.system().stats());
    registry.start(&fx.platform.system().stats(), mparams);
    registry.attach_slo(&slo);
  }
  out.serve =
      tdo::testing::run_serve_load(fx, topo::Placement::kCallerCentric, false);
  if (metrics_on) {
    registry.force_sample(out.serve.end_tick);
    std::ostringstream os;
    registry.export_json(os);
    out.json = os.str();
    out.breaches = slo.breaches();
    for (const MetricsSample& sample : registry.samples()) {
      out.sample_ticks.push_back(sample.tick);
    }
    out.evicted = registry.evicted();
    if (!registry.samples().empty()) {
      const auto& counters = registry.samples().back().snapshot.counters;
      const auto it = counters.find("obs.slo_breaches");
      if (it != counters.end()) out.breach_counter_sampled = it->second;
    }
    registry.attach_slo(nullptr);
    registry.stop();
    slo.detach(fx.platform.system().stats());
  }
  return out;
}

/// Breaches as comparable tuples (SloBreach carries no operator==).
std::vector<std::tuple<std::uint64_t, std::string, std::string, double,
                       double>>
breach_tuples(const std::vector<SloBreach>& breaches) {
  std::vector<std::tuple<std::uint64_t, std::string, std::string, double,
                         double>>
      out;
  for (const SloBreach& b : breaches) {
    out.emplace_back(b.tick, b.cls, b.kind, b.fast_burn, b.slow_burn);
  }
  return out;
}

TEST(MetricsTest, SameSeedExportsByteIdenticalJsonAndBreaches) {
  const std::uint64_t seed = tdo::testing::fuzz_seed();
  const MetricsOutcome first = run_metrics_load(seed, true);
  const MetricsOutcome second = run_metrics_load(seed, true);
  ASSERT_FALSE(first.json.empty());
  ASSERT_GT(first.sample_ticks.size(), 1u);
  // The export is the schema'd standalone document.
  EXPECT_EQ(first.json.rfind("{\"schema\":\"tdo.metrics.v1\"", 0), 0u);
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(breach_tuples(first.breaches), breach_tuples(second.breaches));
  EXPECT_EQ(first.sample_ticks, second.sample_ticks);
  EXPECT_EQ(first.evicted, second.evicted);
}

TEST(MetricsTest, SamplingOffDoesNotPerturbTheTimeline) {
  // The zero-cost-when-off contract, end to end: the same seeded load with
  // metrics sampling never started must complete with identical ids,
  // devices, and done ticks, and leave the event queue at the identical
  // final tick — i.e. a metrics-off run is bit-identical to a build without
  // the subsystem.
  const std::uint64_t seed = tdo::testing::fuzz_seed();
  const MetricsOutcome on = run_metrics_load(seed, true);
  const MetricsOutcome off = run_metrics_load(seed, false);
  EXPECT_FALSE(metrics_enabled());
  EXPECT_EQ(on.serve.completions, off.serve.completions);
  EXPECT_EQ(on.serve.end_tick, off.serve.end_tick);
  EXPECT_EQ(on.serve.report.completed, off.serve.report.completed);
  EXPECT_EQ(on.serve.report.launches, off.serve.report.launches);
}

TEST(MetricsTest, GridSamplingIsMonotoneAndDeduplicated) {
  const MetricsOutcome out = run_metrics_load(tdo::testing::fuzz_seed(), true);
  ASSERT_GT(out.sample_ticks.size(), 1u);
  const std::uint64_t grid = 1'000'000;
  for (std::size_t i = 1; i < out.sample_ticks.size(); ++i) {
    EXPECT_GT(out.sample_ticks[i], out.sample_ticks[i - 1]);
    // At most one sample per grid cell (the run-end force_sample may share
    // the final cell with the last grid sample, but never the same tick).
    if (i + 1 < out.sample_ticks.size()) {
      EXPECT_NE(out.sample_ticks[i] / grid, out.sample_ticks[i - 1] / grid);
    }
  }
}

TEST(MetricsTest, BoundedSeriesEvictsOldestAndCounts) {
  MetricsParams tiny;
  tiny.sample_every = 250'000;  // dense grid so the ring must wrap
  tiny.capacity = 4;
  const MetricsOutcome out =
      run_metrics_load(tdo::testing::fuzz_seed(), true, tiny);
  EXPECT_LE(out.sample_ticks.size(), 4u);
  EXPECT_GT(out.evicted, 0u);
  // Retention keeps the newest samples: the final force_sample survives.
  ASSERT_FALSE(out.sample_ticks.empty());
  EXPECT_EQ(out.sample_ticks.back(), out.serve.end_tick);
}

TEST(MetricsTest, TightLatencySloBreachesAndCountsIntoTheSeries) {
  // A 1 ns interactive latency target under real tens-of-microseconds
  // completions must breach once both windows span data; the observe-only
  // contract still holds (the run completes normally) and the breach counter
  // lands in the sampled series itself.
  const MetricsOutcome out = run_metrics_load(tdo::testing::fuzz_seed(), true);
  ASSERT_FALSE(out.breaches.empty());
  for (const SloBreach& breach : out.breaches) {
    EXPECT_EQ(breach.cls, "interactive");
    EXPECT_EQ(breach.kind, "latency");
    EXPECT_GE(breach.fast_burn, 1.0);
    EXPECT_GE(breach.slow_burn, 1.0);
  }
  EXPECT_GE(out.breach_counter_sampled, out.breaches.size());
}

}  // namespace
}  // namespace tdo::obs
