// Unit tests for the CIM accelerator building blocks: tile, ADC array,
// DMA timing, micro-engine timelines and the batched-reuse protocol.
#include <gtest/gtest.h>

#include "cim/cim_tile.hpp"
#include "cim/context_regs.hpp"
#include "cim/dma.hpp"
#include "pcm/adc.hpp"
#include "testing/fixture.hpp"

namespace tdo::cim {
namespace {

TEST(ContextRegsTest, TypedAccessors) {
  ContextRegs regs;
  regs.write_f32(Reg::kAlpha, 1.5f);
  EXPECT_FLOAT_EQ(regs.read_f32(Reg::kAlpha), 1.5f);
  regs.write_f64(Reg::kScaleA, 0.0123);
  EXPECT_DOUBLE_EQ(regs.read_f64(Reg::kScaleA), 0.0123);
  regs.set_status(DeviceStatus::kBusy);
  EXPECT_EQ(regs.status(), DeviceStatus::kBusy);
}

TEST(TileTest, ProgramTileAndReadBack) {
  TileParams params;
  params.crossbar.rows = 8;
  params.crossbar.cols = 8;
  CimTile tile{params};
  std::vector<std::int8_t> data(64);
  for (int i = 0; i < 64; ++i) data[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i - 32);
  tile.program_tile(data, 8, 8);
  EXPECT_EQ(tile.stats().weight_writes8, 64u);
  EXPECT_EQ(tile.stats().rows_programmed, 8u);
  for (std::uint32_t r = 0; r < 8; ++r) {
    for (std::uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(tile.crossbar().weight_at(r, c),
                static_cast<std::int8_t>(static_cast<int>(r * 8 + c) - 32));
    }
  }
}

TEST(TileTest, GemvCountsMacsAndBufferTraffic) {
  TileParams params;
  params.crossbar.rows = 16;
  params.crossbar.cols = 8;
  CimTile tile{params};
  std::vector<std::int8_t> row(8, 3);
  for (std::uint32_t r = 0; r < 16; ++r) (void)tile.program_row(r, row);
  const std::uint64_t bytes_before = tile.stats().buffer_byte_accesses;
  std::vector<std::int8_t> in(16, 2);
  const auto acc = tile.gemv(in, 16, 8);
  ASSERT_EQ(acc.size(), 8u);
  for (const auto v : acc) EXPECT_EQ(v, 16 * 2 * 3);
  EXPECT_EQ(tile.stats().gemv_ops, 1u);
  EXPECT_EQ(tile.stats().mac8_ops, 16u * 8u);
  // Row buffer in (16B) + output buffer (8 x 4B).
  EXPECT_EQ(tile.stats().buffer_byte_accesses - bytes_before, 16u + 32u);
}

TEST(TileTest, PostprocessAppliesAlphaBetaAndScale) {
  CimTile tile{TileParams{}};
  const float out = tile.postprocess(/*acc=*/1000, /*scale=*/0.01, /*alpha=*/2.0f,
                                     /*beta=*/0.5f, /*previous=*/4.0f);
  EXPECT_FLOAT_EQ(out, 2.0f * 10.0f + 0.5f * 4.0f);
  EXPECT_GE(tile.stats().extra_alu_ops, 3u);
}

TEST(AdcTest, SharingFactorDeterminesCountAndWaves) {
  pcm::AdcArray adc{pcm::AdcParams{.bits = 12, .columns_per_adc = 8}, 512};
  EXPECT_EQ(adc.adc_count(), 64u);
  EXPECT_EQ(adc.conversion_waves(), 8u);
}

TEST(AdcTest, SaturationClampsWhenEnabled) {
  pcm::AdcArray ideal{pcm::AdcParams{.bits = 4, .saturate = false}, 8};
  EXPECT_EQ(ideal.convert(100), 100);
  EXPECT_EQ(ideal.saturations(), 0u);
  pcm::AdcArray clamped{pcm::AdcParams{.bits = 4, .saturate = true}, 8};
  EXPECT_EQ(clamped.convert(100), 15);
  EXPECT_EQ(clamped.convert(-5), 0);
  EXPECT_EQ(clamped.convert(7), 7);
  EXPECT_EQ(clamped.saturations(), 2u);
  EXPECT_EQ(clamped.conversions(), 3u);
}

TEST(DmaTest, BlockTransferTimingScalesWithSize) {
  sim::SimMemory memory{1 << 20};
  Dma dma{DmaParams{}, memory};
  std::vector<std::uint8_t> buf(1024);
  const auto t1k = dma.read_block(0, buf);
  std::vector<std::uint8_t> buf4(4096);
  const auto t4k = dma.read_block(0, buf4);
  EXPECT_GT(t4k.picoseconds(), t1k.picoseconds() * 2);
  EXPECT_EQ(dma.bytes_read(), 1024u + 4096u);
  EXPECT_EQ(dma.bursts(), 2u);
}

TEST(DmaTest, StridedTransfersGatherAndCostMore) {
  sim::SimMemory memory{1 << 20};
  Dma dma{DmaParams{}, memory};
  // Write a column pattern: element i at stride 256.
  for (std::uint32_t i = 0; i < 16; ++i) {
    memory.write_scalar<float>(i * 256, static_cast<float>(i));
  }
  std::vector<std::uint8_t> out(16 * 4);
  const auto t_strided = dma.read_strided(0, 256, 4, 16, out);
  for (std::uint32_t i = 0; i < 16; ++i) {
    float v;
    std::memcpy(&v, out.data() + i * 4, 4);
    EXPECT_EQ(v, static_cast<float>(i));
  }
  std::vector<std::uint8_t> block(16 * 4);
  const auto t_block = dma.read_block(0, block);
  EXPECT_GT(t_strided.picoseconds(), t_block.picoseconds());
}

TEST(EngineTest, TimelineSeparatesWeightAndStreamPhases) {
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(32 * 32, 1.0, 1);
  const auto b = testing::random_matrix(32 * 32, 1.0, 2);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(32 * 32);
  ASSERT_TRUE(p.runtime()
                  .sgemm(32, 32, 32, 1.0f, va_a, 32, va_b, 32, 0.0f, va_c, 32)
                  .is_ok());
  const JobTimeline& timeline = p.accel().last_timeline();
  // Weight phase: 32 rows x 2.5 us = 80 us (plus DMA pipeline fill).
  EXPECT_NEAR(timeline.weight_phase().microseconds(), 80.0, 5.0);
  // Stream phase: 32 GEMVs x 1 us pipelined.
  EXPECT_NEAR(timeline.stream_phase().microseconds(), 32.0, 5.0);
  EXPECT_EQ(timeline.done - timeline.trigger,
            timeline.total().ticks());
}

TEST(EngineTest, SkipWeightLoadOnlyInsideBatch) {
  // Two identical sgemm calls: the engine must NOT reuse the tile across
  // independent jobs (no cross-job guarantee), so B is written twice.
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(16 * 16, 1.0, 1);
  const auto b = testing::random_matrix(16 * 16, 1.0, 2);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(16 * 16);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(p.runtime()
                    .sgemm(16, 16, 16, 1.0f, va_a, 16, va_b, 16, 0.0f, va_c, 16)
                    .is_ok());
  }
  EXPECT_EQ(p.accel().report().weight_writes8, 2u * 16u * 16u);
}

TEST(EngineTest, BatchedDistinctStationariesAllProgram) {
  // Batched call where B differs per item: no reuse is possible; every
  // stationary must be programmed.
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(16 * 16, 1.0, 1);
  const auto b1 = testing::random_matrix(16 * 16, 1.0, 2);
  const auto b2 = testing::random_matrix(16 * 16, 1.0, 3);
  const auto va_a = p.upload(a);
  const auto va_b1 = p.upload(b1);
  const auto va_b2 = p.upload(b2);
  const auto va_c1 = p.device_zeros(16 * 16);
  const auto va_c2 = p.device_zeros(16 * 16);
  const std::vector<rt::GemmBatchItem> items = {{va_a, va_b1, va_c1},
                                                {va_a, va_b2, va_c2}};
  ASSERT_TRUE(p.runtime()
                  .sgemm_batched(16, 16, 16, 1.0f, items, 16, 16, 0.0f, 16,
                                 StationaryOperand::kB)
                  .is_ok());
  EXPECT_EQ(p.accel().report().weight_writes8, 2u * 16u * 16u);
}

TEST(EngineTest, GemvIntensityIsOne) {
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(64 * 48, 1.0, 5);
  const auto x = testing::random_matrix(48, 1.0, 6);
  const auto va_a = p.upload(a);
  const auto va_x = p.upload(x);
  const auto va_y = p.device_zeros(64);
  ASSERT_TRUE(
      p.runtime().sgemv(false, 64, 48, 1.0f, va_a, 48, va_x, 0.0f, va_y).is_ok());
  // Every written weight participates in exactly one MAC.
  EXPECT_DOUBLE_EQ(p.accel().report().macs_per_cim_write(), 1.0);
}

class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeSweep, ResultWithinQuantBoundAcrossShapes) {
  const auto [m, n, k] = GetParam();
  testing::Platform p;
  ASSERT_TRUE(p.runtime().init(0).is_ok());
  const auto a = testing::random_matrix(static_cast<std::size_t>(m * k), 1.0, 11);
  const auto b = testing::random_matrix(static_cast<std::size_t>(k * n), 1.0, 12);
  const auto va_a = p.upload(a);
  const auto va_b = p.upload(b);
  const auto va_c = p.device_zeros(static_cast<std::size_t>(m * n));
  ASSERT_TRUE(p.runtime()
                  .sgemm(static_cast<std::uint64_t>(m), static_cast<std::uint64_t>(n),
                         static_cast<std::uint64_t>(k), 1.0f, va_a,
                         static_cast<std::uint64_t>(k), va_b,
                         static_cast<std::uint64_t>(n), 0.0f, va_c,
                         static_cast<std::uint64_t>(n))
                  .is_ok());
  std::vector<float> ref(static_cast<std::size_t>(m * n), 0.0f);
  testing::ref_gemm(static_cast<std::size_t>(m), static_cast<std::size_t>(n),
                    static_cast<std::size_t>(k), 1.0f, a,
                    static_cast<std::size_t>(k), b, static_cast<std::size_t>(n),
                    0.0f, ref, static_cast<std::size_t>(n));
  const auto got = p.read_floats(va_c, static_cast<std::size_t>(m * n));
  const double bound = support::dot_quant_error_bound(1.0, 1.0,
                                                      static_cast<std::size_t>(k)) +
                       1e-3;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], bound) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 17, 5},
                      std::tuple{31, 1, 9}, std::tuple{7, 9, 300},
                      std::tuple{300, 5, 7}, std::tuple{5, 300, 7},
                      std::tuple{64, 64, 64}, std::tuple{257, 257, 257}));

}  // namespace
}  // namespace tdo::cim
