// Tests for the two-tier fabric model (topo/topology.*): link busy-window
// contention math, withhold-response delivery timing, retirement, the
// topology map's near-by-default contract, and the bench CLI spec parser.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "support/stats.hpp"
#include "testing/fixture.hpp"
#include "topo/topology.hpp"

namespace tdo::topo {
namespace {

LinkParams test_params() {
  LinkParams params;
  params.latency_multiplier = 4.0;
  params.bandwidth_bytes_per_sec = 1e9;  // 1 byte per ns
  params.base_latency = support::Duration::from_ns(100);
  params.response_bytes = 64;
  return params;
}

TEST(TopoLinkTest, TransferTimeIsBaseLatencyPlusSerialization) {
  Link link{test_params()};
  // 1000 bytes at 1 byte/ns = 1000 ns, plus 100 ns propagation.
  EXPECT_EQ(link.transfer_time(1000).ticks(),
            support::Duration::from_ns(1100).ticks());
  // Zero-byte messages still pay propagation.
  EXPECT_EQ(link.transfer_time(0).ticks(),
            support::Duration::from_ns(100).ticks());
}

TEST(TopoLinkTest, ReserveIsFirstFitAndCountsContention) {
  Link link{test_params()};
  // Empty timeline: granted at the requested tick, no contention.
  EXPECT_EQ(link.reserve(1000, 500), 1000);
  EXPECT_EQ(link.contended_ticks(), 0u);
  // Overlapping request queues behind the first window.
  EXPECT_EQ(link.reserve(1200, 300), 1500);
  EXPECT_EQ(link.contended_ticks(), 300u);
  // A request that fits in a gap before existing traffic is not delayed.
  EXPECT_EQ(link.reserve(0, 400), 0);
  EXPECT_EQ(link.contended_ticks(), 300u);
}

TEST(TopoLinkTest, DeliveryAddsSerializationAndCountsResponses) {
  Link link{test_params()};
  // 64-byte response: 64 ns serialization + 100 ns propagation = 164 ns
  // after the device-side done tick on an idle link.
  const sim::Tick done = support::Duration::from_us(5).ticks();
  const sim::Tick observed = link.delivery(done, 64);
  EXPECT_EQ(observed, done + support::Duration::from_ns(164).ticks());
  EXPECT_EQ(link.responses(), 1u);
  EXPECT_EQ(link.response_bytes(), 64u);
  // A second response raised at the same tick serializes behind the first.
  const sim::Tick second = link.delivery(done, 64);
  EXPECT_GE(second, observed);
  EXPECT_EQ(link.responses(), 2u);
  EXPECT_GT(link.contended_ticks(), 0u);
}

TEST(TopoLinkTest, RetireBeforeDropsOnlyFinishedWindows) {
  Link link{test_params()};
  EXPECT_EQ(link.reserve(0, 100), 0);
  EXPECT_EQ(link.reserve(200, 100), 200);
  link.retire_before(150);  // first window [0,100) is history
  // The freed region is reusable; the surviving window still blocks.
  EXPECT_EQ(link.reserve(0, 100), 0);
  EXPECT_EQ(link.reserve(250, 100), 300);
}

TEST(TopoLinkTest, MultiplierClampsToAtLeastOne) {
  LinkParams params;
  params.latency_multiplier = 0.25;
  Link link{params};
  EXPECT_DOUBLE_EQ(link.params().latency_multiplier, 1.0);
}

/// Runs one offloaded GEMM and returns the tick the completion observer
/// fired at, optionally signaling through a far link.
sim::Tick observed_completion_tick(Link* link, std::uint64_t* withheld) {
  testing::Platform p;
  EXPECT_TRUE(p.runtime().init(0).is_ok());
  if (link != nullptr) p.accel().set_response_link(link);
  sim::Tick observed = 0;
  const int owner = 0;
  p.accel().set_completion_observer(
      [&](std::uint64_t, sim::Tick when) { observed = when; }, &owner);
  const std::size_t m = 8, n = 32, k = 32;
  const auto va_a = p.upload(testing::random_matrix(m * k, 1.0, 3));
  const auto va_b = p.upload(testing::random_matrix(k * n, 1.0, 4));
  const auto va_c = p.device_zeros(m * n);
  EXPECT_TRUE(p.runtime()
                  .sgemm(m, n, k, 1.0f, va_a, k, va_b, n, 0.0f, va_c, n)
                  .is_ok());
  EXPECT_TRUE(p.runtime().synchronize().is_ok());
  // The deferred response event may land past the last job event.
  p.system().events().run_until(p.system().events().now() +
                                support::Duration::from_us(100).ticks());
  *withheld = p.accel().withheld_responses();
  p.accel().clear_completion_observer(&owner);
  return observed;
}

TEST(TopoLinkTest, WithholdResponseDefersObserverSignal) {
  std::uint64_t withheld_near = 0, withheld_far = 0;
  const sim::Tick near_tick =
      observed_completion_tick(nullptr, &withheld_near);
  Link link{test_params()};
  const sim::Tick far_tick = observed_completion_tick(&link, &withheld_far);
  ASSERT_GT(near_tick, 0u);
  ASSERT_GT(far_tick, 0u);
  EXPECT_EQ(withheld_near, 0u);
  EXPECT_GT(withheld_far, 0u);
  EXPECT_EQ(link.responses(), withheld_far);
  // Identical workloads: the far run's host-visible completion lags the
  // near run's by at least the link's response serialization time.
  EXPECT_GE(far_tick,
            near_tick + link.transfer_time(link.params().response_bytes)
                            .ticks());
}

TEST(TopoTopologyTest, UnknownDevicesAreNearWithUnitMultiplier) {
  Topology topo;
  EXPECT_EQ(topo.device_count(), 0u);
  EXPECT_EQ(topo.tier(0), Topology::kNearTier);
  EXPECT_EQ(topo.link(0), nullptr);
  EXPECT_DOUBLE_EQ(topo.latency_multiplier(0), 1.0);
  EXPECT_FALSE(topo.has_far());
}

TEST(TopoTopologyTest, TiersAndLinksFollowRegistrationOrder) {
  Link link{test_params()};
  Topology topo;
  topo.add_device(Topology::kNearTier);
  topo.add_device(Topology::kNearTier);
  topo.add_device(Topology::kFarTier, &link);
  EXPECT_EQ(topo.device_count(), 3u);
  EXPECT_EQ(topo.tier(0), Topology::kNearTier);
  EXPECT_EQ(topo.tier(2), Topology::kFarTier);
  EXPECT_EQ(topo.link(1), nullptr);
  EXPECT_EQ(topo.link(2), &link);
  EXPECT_DOUBLE_EQ(topo.latency_multiplier(1), 1.0);
  EXPECT_DOUBLE_EQ(topo.latency_multiplier(2), 4.0);
  EXPECT_TRUE(topo.has_far());
  EXPECT_EQ(topo.tier_size(Topology::kNearTier), 2u);
  EXPECT_EQ(topo.tier_size(Topology::kFarTier), 1u);
}

TEST(TopoSpecTest, ParsesNearAndFarCounts) {
  const auto spec = parse_topology_spec("near:2,far:3");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->near, 2u);
  EXPECT_EQ(spec->far, 3u);
  EXPECT_DOUBLE_EQ(spec->far_multiplier, 4.0);  // default
  EXPECT_EQ(spec->device_count(), 5u);
}

TEST(TopoSpecTest, ParsesFarMultiplierSuffix) {
  const auto spec = parse_topology_spec("near:1,far:2x6.5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->near, 1u);
  EXPECT_EQ(spec->far, 2u);
  EXPECT_DOUBLE_EQ(spec->far_multiplier, 6.5);
}

TEST(TopoSpecTest, PartsMayBeOmitted) {
  const auto near_only = parse_topology_spec("near:4");
  ASSERT_TRUE(near_only.has_value());
  EXPECT_EQ(near_only->near, 4u);
  EXPECT_EQ(near_only->far, 0u);
  // An explicit spec replaces the defaults entirely: far-only means no
  // near devices, not one.
  const auto far_only = parse_topology_spec("far:2x8");
  ASSERT_TRUE(far_only.has_value());
  EXPECT_EQ(far_only->near, 0u);
  EXPECT_EQ(far_only->far, 2u);
  EXPECT_DOUBLE_EQ(far_only->far_multiplier, 8.0);
}

TEST(TopoSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_topology_spec("").has_value());
  EXPECT_FALSE(parse_topology_spec("near").has_value());
  EXPECT_FALSE(parse_topology_spec("near:").has_value());
  EXPECT_FALSE(parse_topology_spec("near:x").has_value());
  EXPECT_FALSE(parse_topology_spec("far:2x").has_value());
  EXPECT_FALSE(parse_topology_spec("mid:3").has_value());
  EXPECT_FALSE(parse_topology_spec("near:2;far:1").has_value());
}

}  // namespace
}  // namespace tdo::topo
