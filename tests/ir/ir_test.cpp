// IR tests: affine-expression algebra (property style), bounds, validation
// rules and the builder helpers.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/program.hpp"
#include "support/rng.hpp"

namespace tdo::ir {
namespace {

TEST(AffineTest, ConstructionAndQueries) {
  const AffineExpr e = AffineExpr::var("i", 2) + AffineExpr::constant(5);
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 0);
  EXPECT_EQ(e.constant_term(), 5);
  EXPECT_FALSE(e.is_constant());
  EXPECT_FALSE(e.is_single_var());
  EXPECT_TRUE(AffineExpr::var("k").is_single_var());
  EXPECT_EQ(*AffineExpr::var("k").single_var(), "k");
}

TEST(AffineTest, ArithmeticCancelsTerms) {
  const AffineExpr a = AffineExpr::var("i") + AffineExpr::var("j", 3);
  const AffineExpr b = AffineExpr::var("j", 3);
  const AffineExpr diff = a - b;
  EXPECT_EQ(diff.coeff("j"), 0);
  EXPECT_TRUE(diff.is_single_var());
  const AffineExpr zeroed = diff * 0;
  EXPECT_TRUE(zeroed.is_constant());
  EXPECT_EQ(zeroed.constant_term(), 0);
}

TEST(AffineTest, SubstituteComposesAffinely) {
  // e = 2i + j + 1; i := 3q + 2  =>  6q + j + 5.
  const AffineExpr e =
      AffineExpr::var("i", 2) + AffineExpr::var("j") + AffineExpr::constant(1);
  const AffineExpr replacement =
      AffineExpr::var("q", 3) + AffineExpr::constant(2);
  const AffineExpr out = e.substitute("i", replacement);
  EXPECT_EQ(out.coeff("q"), 6);
  EXPECT_EQ(out.coeff("j"), 1);
  EXPECT_EQ(out.coeff("i"), 0);
  EXPECT_EQ(out.constant_term(), 5);
}

TEST(AffineTest, EvaluationMatchesAlgebraOnRandomExprs) {
  support::Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t ci = rng.uniform_int(-5, 5);
    const std::int64_t cj = rng.uniform_int(-5, 5);
    const std::int64_t c0 = rng.uniform_int(-100, 100);
    const std::int64_t k = rng.uniform_int(-3, 3);
    const AffineExpr e = (AffineExpr::var("i", ci) + AffineExpr::var("j", cj) +
                          AffineExpr::constant(c0)) *
                         k;
    const std::int64_t vi = rng.uniform_int(-50, 50);
    const std::int64_t vj = rng.uniform_int(-50, 50);
    const std::map<std::string, std::int64_t> env = {{"i", vi}, {"j", vj}};
    EXPECT_EQ(e.evaluate(env), k * (ci * vi + cj * vj + c0));
  }
}

TEST(AffineTest, BoundEvaluatesMin) {
  const Bound b = Bound::min_of(AffineExpr::var("ii") + AffineExpr::constant(4),
                                AffineExpr::constant(10));
  EXPECT_EQ(b.evaluate({{"ii", 0}}), 4);
  EXPECT_EQ(b.evaluate({{"ii", 8}}), 10);
  EXPECT_EQ(b.to_string(), "min(ii + 4, 10)");
}

TEST(AffineTest, ToStringIsReadable) {
  const AffineExpr e = AffineExpr::var("i", 2) - AffineExpr::var("j") +
                       AffineExpr::constant(-3);
  EXPECT_EQ(e.to_string(), "2*i - j - 3");
  EXPECT_EQ(AffineExpr::constant(0).to_string(), "0");
}

TEST(ValidateTest, AcceptsWellFormedFunction) {
  Function fn;
  fn.name = "ok";
  fn.arrays.push_back(ArrayDecl{"A", {4, 4}});
  fn.scalars.push_back(ScalarDecl{"alpha", 2.0});
  fn.body.push_back(make_loop(
      "i", 4,
      {make_loop("j", 4,
                 {make_assign(ref("A", {iv("i"), iv("j")}),
                              mul(make_param("alpha"),
                                  make_load("A", {iv("i"), iv("j")})))})}));
  EXPECT_TRUE(fn.validate().is_ok());
}

TEST(ValidateTest, RejectsUndeclaredArray) {
  Function fn;
  fn.name = "bad";
  fn.arrays.push_back(ArrayDecl{"A", {4}});
  fn.body.push_back(
      make_loop("i", 4, {make_assign(ref("B", {iv("i")}), make_const(1.0))}));
  EXPECT_FALSE(fn.validate().is_ok());
}

TEST(ValidateTest, RejectsUnboundIvInSubscript) {
  Function fn;
  fn.name = "bad";
  fn.arrays.push_back(ArrayDecl{"A", {4}});
  fn.body.push_back(
      make_loop("i", 4, {make_assign(ref("A", {iv("q")}), make_const(1.0))}));
  EXPECT_FALSE(fn.validate().is_ok());
}

TEST(ValidateTest, RejectsArityMismatchAndBadDims) {
  Function fn;
  fn.name = "bad";
  fn.arrays.push_back(ArrayDecl{"A", {4, 4}});
  fn.body.push_back(
      make_loop("i", 4, {make_assign(ref("A", {iv("i")}), make_const(1.0))}));
  EXPECT_FALSE(fn.validate().is_ok());

  Function fn2;
  fn2.name = "bad2";
  fn2.arrays.push_back(ArrayDecl{"A", {0}});
  EXPECT_FALSE(fn2.validate().is_ok());
}

TEST(ValidateTest, RejectsDuplicateNamesAndShadowing) {
  Function fn;
  fn.name = "bad";
  fn.arrays.push_back(ArrayDecl{"A", {4}});
  fn.arrays.push_back(ArrayDecl{"A", {8}});
  EXPECT_FALSE(fn.validate().is_ok());

  Function fn2;
  fn2.name = "bad2";
  fn2.arrays.push_back(ArrayDecl{"A", {4}});
  fn2.body.push_back(make_loop(
      "i", 4,
      {make_loop("i", 4, {make_assign(ref("A", {iv("i")}), make_const(1.0))})}));
  EXPECT_FALSE(fn2.validate().is_ok());
}

TEST(ProgramTest, RenumberStatementsIsPreorder) {
  Function fn;
  fn.name = "renum";
  fn.arrays.push_back(ArrayDecl{"A", {4}});
  fn.body.push_back(
      make_loop("i", 4, {make_assign(ref("A", {iv("i")}), make_const(1.0)),
                         make_assign(ref("A", {iv("i")}), make_const(2.0))}));
  fn.body.push_back(
      make_loop("j", 4, {make_assign(ref("A", {iv("j")}), make_const(3.0))}));
  fn.renumber_statements();
  std::vector<std::string> names;
  for_each_stmt(fn.body, [&](const Stmt& s) { names.push_back(s.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"S0", "S1", "S2"}));
}

TEST(ProgramTest, CollectLoadsFindsAllReads) {
  const ExprPtr e = add(mul(make_load("A", {iv("i")}), make_load("B", {iv("i")})),
                        make_load("A", {iv("i") + cst(1)}));
  std::vector<const LoadExpr*> loads;
  collect_loads(e, loads);
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0]->array, "A");
  EXPECT_EQ(loads[1]->array, "B");
}

TEST(ProgramTest, ArrayDeclSizeHelpers) {
  const ArrayDecl decl{"A", {3, 5, 7}};
  EXPECT_EQ(decl.element_count(), 105);
  EXPECT_EQ(decl.bytes(), 420);
}

}  // namespace
}  // namespace tdo::ir
