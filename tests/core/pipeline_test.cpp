// End-to-end compiler tests: detection, fusion, tiling, offload codegen and
// full execution on the simulated platform for every PolyBench workload.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "polybench/harness.hpp"
#include "polybench/workloads.hpp"

namespace tdo::core {
namespace {

[[nodiscard]] ir::Function parse_or_die(const std::string& source) {
  auto fn = frontend::parse_kernel(source);
  EXPECT_TRUE(fn.is_ok()) << fn.status().to_string();
  return *std::move(fn);
}

TEST(DetectTest, RecognizesGemmWithBetaInit) {
  const auto fn = parse_or_die(pb::make_gemm(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 1u);
  ASSERT_TRUE(detection.kernels[0].is_gemm());
  const GemmKernel& g = detection.kernels[0].gemm();
  EXPECT_EQ(g.c, "C");
  EXPECT_EQ(g.a, "A");
  EXPECT_EQ(g.b, "B");
  EXPECT_FLOAT_EQ(g.alpha, 1.5f);
  EXPECT_FLOAT_EQ(g.beta, 1.2f);
  EXPECT_EQ(g.m, 48);
  EXPECT_EQ(g.stmts.size(), 2u);  // init + update
}

TEST(DetectTest, Recognizes2mmAsTwoDependentGemms) {
  const auto fn = parse_or_die(pb::make_2mm(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 2u);
  EXPECT_TRUE(detection.kernels[0].is_gemm());
  EXPECT_TRUE(detection.kernels[1].is_gemm());
  EXPECT_FLOAT_EQ(detection.kernels[0].gemm().beta, 0.0f);  // tmp zeroed
  // 2mm's second GEMM reads tmp: no fusion group may form.
  EXPECT_TRUE(find_fusion_groups(detection).empty());
}

TEST(DetectTest, Recognizes3mmAndFusesIndependentPair) {
  const auto fn = parse_or_die(pb::make_3mm(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 3u);
  const auto groups = find_fusion_groups(detection);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 2u);  // E=A*B and F=C*D
}

TEST(DetectTest, RecognizesGemvKernelsInMvt) {
  const auto fn = parse_or_die(pb::make_mvt(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 2u);
  ASSERT_TRUE(detection.kernels[0].is_gemv());
  ASSERT_TRUE(detection.kernels[1].is_gemv());
  EXPECT_FALSE(detection.kernels[0].gemv().transpose);
  EXPECT_TRUE(detection.kernels[1].gemv().transpose);
  // Accumulating GEMVs keep beta = 1.
  EXPECT_FLOAT_EQ(detection.kernels[0].gemv().beta, 1.0f);
}

TEST(DetectTest, RecognizesBicgPairWithFoldedInit) {
  const auto fn = parse_or_die(pb::make_bicg(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 2u);
  // q[i] = 0 folds into the non-transposed kernel's beta.
  bool saw_beta0 = false;
  bool saw_transpose = false;
  for (const auto& dk : detection.kernels) {
    ASSERT_TRUE(dk.is_gemv());
    if (dk.gemv().beta == 0.0f) saw_beta0 = true;
    if (dk.gemv().transpose) saw_transpose = true;
  }
  EXPECT_TRUE(saw_beta0);
  EXPECT_TRUE(saw_transpose);
}

TEST(DetectTest, RecognizesConvStencil) {
  const auto fn = parse_or_die(pb::make_conv(pb::Preset::kTest).source);
  const DetectionResult detection = detect_kernels(fn);
  ASSERT_EQ(detection.kernels.size(), 1u);
  ASSERT_TRUE(detection.kernels[0].is_conv());
  const ConvKernel& c = detection.kernels[0].conv();
  EXPECT_EQ(c.taps_h, 3);
  EXPECT_EQ(c.taps_w, 3);
  EXPECT_EQ(c.coeffs.size(), 9u);
  EXPECT_FLOAT_EQ(c.coeffs.at({1, 1}), 0.6f);
}

TEST(DetectTest, NonAffineAccessBlocksDetection) {
  const auto fn = parse_or_die(R"(
kernel weird(N = 8) {
  array float A[N][N];
  array float y[N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      y[i] += A[i * j][j] * A[i][j];
}
)");
  const DetectionResult detection = detect_kernels(fn);
  EXPECT_TRUE(detection.kernels.empty());
}

TEST(DetectTest, MacsPerWriteSeparatesGemmFromGemv) {
  const auto gemm_fn = parse_or_die(pb::make_gemm(pb::Preset::kTest).source);
  const auto mvt_fn = parse_or_die(pb::make_mvt(pb::Preset::kTest).source);
  const auto gemm_det = detect_kernels(gemm_fn);
  const auto mvt_det = detect_kernels(mvt_fn);
  EXPECT_GT(gemm_det.kernels[0].macs_per_write(), 16.0);
  EXPECT_DOUBLE_EQ(mvt_det.kernels[0].macs_per_write(), 1.0);
}

TEST(PipelineTest, SelectivePolicyLowersToStreamThreshold) {
  // The selective policy no longer drops kernels statically: it lowers the
  // MACs-per-write threshold into the runtime stream, which makes the
  // per-command dispatch decision (one knob for static intent and dynamic
  // fallback).
  const auto fn = parse_or_die(pb::make_mvt(pb::Preset::kTest).source);
  CompileOptions options;
  options.policy = OffloadPolicy::kSelective;
  const CompileResult result = compile(fn, options);
  EXPECT_DOUBLE_EQ(result.stream_min_macs_per_write, options.min_macs_per_write);
  EXPECT_TRUE(result.any_offloaded());  // emitted as device calls...

  CompileOptions always;
  always.policy = OffloadPolicy::kAlways;
  EXPECT_DOUBLE_EQ(compile(fn, always).stream_min_macs_per_write, 0.0);
}

TEST(PipelineTest, SelectivePolicyKeepsGemvOnHostAtRuntime) {
  // ...but mvt's GEMV commands (MACs-per-write = 1) fall below the lowered
  // threshold at runtime, so the crossbar is never programmed and the work
  // runs on the host CPU model — the paper's "Selective Geomean" behaviour.
  auto workload = pb::make_workload("mvt", pb::Preset::kTest);
  ASSERT_TRUE(workload.is_ok());
  pb::HarnessOptions options;
  options.compile.policy = OffloadPolicy::kSelective;
  const auto report = pb::run_cim(*workload, options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->correct);
  EXPECT_EQ(report->cim_writes, 0u) << "device crossbar was programmed";
  EXPECT_GT(report->stream_fallbacks, 0u);
}

TEST(PipelineTest, GeneratedProgramContainsListing1Calls) {
  const auto fn = parse_or_die(pb::make_gemm(pb::Preset::kTest).source);
  const CompileResult result = compile(fn);
  const std::string source = result.cim_program.to_source();
  EXPECT_NE(source.find("polly_cimInit(0)"), std::string::npos);
  EXPECT_NE(source.find("polly_cimMalloc"), std::string::npos);
  EXPECT_NE(source.find("polly_cimBlasSGemm"), std::string::npos);
  EXPECT_NE(source.find("polly_cimDevToHost"), std::string::npos);
  EXPECT_NE(source.find("polly_cimFree"), std::string::npos);
}

TEST(PipelineTest, FusionEmitsBatchedCall) {
  const auto fn = parse_or_die(pb::make_3mm(pb::Preset::kTest).source);
  const CompileResult result = compile(fn);
  const std::string source = result.cim_program.to_source();
  EXPECT_NE(source.find("polly_cimBlasGemmBatched"), std::string::npos);
}

TEST(PipelineTest, ScheduleTreeDumpShowsBands) {
  const auto fn = parse_or_die(pb::make_gemm(pb::Preset::kTest).source);
  const CompileResult result = compile(fn);
  EXPECT_NE(result.schedule_tree_dump.find("band(i"), std::string::npos);
  EXPECT_NE(result.schedule_tree_dump.find("band(k"), std::string::npos);
  EXPECT_NE(result.schedule_tree_dump.find("leaf("), std::string::npos);
}

class WorkloadEndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadEndToEnd, HostRunMatchesReference) {
  auto workload = pb::make_workload(GetParam(), pb::Preset::kTest);
  ASSERT_TRUE(workload.is_ok());
  auto report = pb::run_host(*workload);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // Host float execution is near-exact vs the double reference.
  EXPECT_LT(report->max_abs_error, 1e-2) << "host run diverged";
  EXPECT_GT(report->host_instructions, 0u);
  EXPECT_GT(report->total_energy.picojoules(), 0.0);
}

TEST_P(WorkloadEndToEnd, CimRunIsCorrectWithinQuantizationBound) {
  auto workload = pb::make_workload(GetParam(), pb::Preset::kTest);
  ASSERT_TRUE(workload.is_ok());
  auto report = pb::run_cim(*workload);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->any_offloaded) << "nothing was offloaded";
  EXPECT_TRUE(report->correct)
      << "error " << report->max_abs_error << " tolerance "
      << workload->tolerance;
  EXPECT_GT(report->cim_writes, 0u);
  EXPECT_GT(report->mac_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadEndToEnd,
                         ::testing::ValuesIn(pb::kernel_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace tdo::core
