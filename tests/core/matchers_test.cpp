// Tests for schedule-tree construction, the Loop Tactics matcher
// combinators, fusion legality, tiling plans and the tiled IR view.
#include <gtest/gtest.h>

#include "core/fusion.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_tree.hpp"
#include "core/tiling.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "sim/system.hpp"

namespace tdo::core {
namespace {

[[nodiscard]] ir::Function gemm_fn() {
  auto fn = frontend::parse_kernel(R"(
kernel g(N = 8) {
  array float A[N][N];
  array float B[N][N];
  array float C[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
}
)");
  EXPECT_TRUE(fn.is_ok());
  return *std::move(fn);
}

TEST(ScheduleTreeTest, MirrorsLoopStructure) {
  const auto fn = gemm_fn();
  const ScheduleNode tree = build_schedule_tree(fn);
  ASSERT_EQ(tree.kind, ScheduleNodeKind::kBand);
  EXPECT_EQ(tree.loop->iv, "i");
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].loop->iv, "j");
  const auto& leaf_node = tree.children[0].children[0].children[0];
  ASSERT_EQ(leaf_node.kind, ScheduleNodeKind::kLeaf);
  EXPECT_EQ(leaf_node.stmt->lhs.array, "C");
}

TEST(MatcherTest, BandChainWithCapturesMatchesGemm) {
  const auto fn = gemm_fn();
  const ScheduleNode tree = build_schedule_tree(fn);
  Captures captures;
  const Matcher m = band("i", band("j", band("k", leaf("stmt"))));
  ASSERT_TRUE(m.matches(tree, captures));
  EXPECT_EQ(captures.at("i")->loop->iv, "i");
  EXPECT_EQ(captures.at("k")->loop->iv, "k");
  EXPECT_EQ(captures.at("stmt")->stmt->name, "S0");
}

TEST(MatcherTest, WrongShapeDoesNotMatch) {
  const auto fn = gemm_fn();
  const ScheduleNode tree = build_schedule_tree(fn);
  Captures captures;
  // Two-band matcher must not match the three-deep gemm nest's leaf position.
  const Matcher m = band(band(leaf()));
  EXPECT_FALSE(m.matches(tree, captures));
}

TEST(MatcherTest, SequenceMatcherChecksArityAndOrder) {
  auto fn = frontend::parse_kernel(R"(
kernel s(N = 4) {
  array float A[N];
  for (i = 0; i < N; i++) {
    A[i] = 1.0;
    A[i] += 2.0;
  }
}
)");
  ASSERT_TRUE(fn.is_ok());
  const ScheduleNode tree = build_schedule_tree(*fn);
  Captures captures;
  EXPECT_TRUE(band(sequence({leaf("first"), leaf("second")})).matches(tree, captures));
  EXPECT_FALSE(band(sequence({leaf()})).matches(tree, captures));
  EXPECT_EQ(captures.at("first")->stmt->name, "S0");
}

TEST(FusionTest, IndependenceRules) {
  GemmKernel x;
  x.c = "C";
  x.a = "A";
  x.b = "B";
  GemmKernel y = x;
  y.c = "D";
  y.b = "E";
  EXPECT_TRUE(kernels_independent(x, y));   // Listing 2 shape
  y.a = "C";
  EXPECT_FALSE(kernels_independent(x, y));  // reads X's output
  y.a = "A";
  y.c = "B";
  EXPECT_FALSE(kernels_independent(x, y));  // writes X's input
  y.c = "C";
  EXPECT_FALSE(kernels_independent(x, y));  // writes X's output
}

TEST(FusionTest, SharedInputSelectsStationaryA) {
  auto fn = frontend::parse_kernel(R"(
kernel l2(N = 8) {
  array float A[N][N];
  array float B[N][N];
  array float E[N][N];
  array float C[N][N];
  array float D[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        D[i][j] += A[i][k] * E[k][j];
}
)");
  ASSERT_TRUE(fn.is_ok());
  const auto detection = detect_kernels(*fn);
  const auto groups = find_fusion_groups(detection);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].stationary, cim::StationaryOperand::kA);
  EXPECT_EQ(groups[0].shared_operand, "A");
}

TEST(TilingTest, PlanOnlyWhenOversized) {
  GemmKernel g;
  g.m = 128;
  g.n = 128;
  g.k = 128;
  EXPECT_FALSE(plan_gemm_tiling(g, 256, 256, cim::StationaryOperand::kA).needed);
  g.k = 1000;
  const TilePlan plan = plan_gemm_tiling(g, 256, 256, cim::StationaryOperand::kA);
  EXPECT_TRUE(plan.needed);
  EXPECT_EQ(plan.tile_k, 256);
  EXPECT_EQ(plan.tile_cols, 128);
}

TEST(TilingTest, TiledViewIsSemanticallyEquivalent) {
  // Execute original and Listing-3 tiled view on the host interpreter and
  // compare results element-wise (uneven tile sizes exercise min-bounds).
  auto fn = frontend::parse_kernel(R"(
kernel g(N = 10) {
  array float A[N][N];
  array float B[N][N];
  array float C[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        C[i][j] += A[i][k] * B[k][j];
}
)");
  ASSERT_TRUE(fn.is_ok());
  const auto detection = detect_kernels(*fn);
  ASSERT_EQ(detection.kernels.size(), 1u);
  TilePlan plan;
  plan.needed = true;
  plan.tile_k = 4;  // 10 % 4 != 0: tail tiles use the min() bound
  plan.tile_cols = 3;
  const ir::Function tiled =
      make_tiled_view(*fn, detection.kernels[0].gemm(), plan);
  ASSERT_TRUE(tiled.validate().is_ok());

  auto run = [](const ir::Function& f) {
    sim::System system;
    exec::Interpreter interp{system, nullptr};
    const auto program = exec::host_only_program(f);
    EXPECT_TRUE(interp.prepare(program).is_ok());
    std::vector<float> a(100), b(100);
    for (int i = 0; i < 100; ++i) {
      a[static_cast<std::size_t>(i)] = static_cast<float>(i % 7) - 3.0f;
      b[static_cast<std::size_t>(i)] = static_cast<float>(i % 5) - 2.0f;
    }
    EXPECT_TRUE(interp.set_array("A", a).is_ok());
    EXPECT_TRUE(interp.set_array("B", b).is_ok());
    EXPECT_TRUE(interp.run(program).is_ok());
    return *interp.get_array("C");
  };
  const auto original = run(*fn);
  const auto transformed = run(tiled);
  ASSERT_EQ(original.size(), transformed.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_FLOAT_EQ(original[i], transformed[i]) << i;
  }
}

TEST(ResidualTest, GesummvEpilogueStaysOnHost) {
  auto fn = frontend::parse_kernel(R"(
kernel ges(N = 8, alpha = 1.5, beta = 2.5) {
  array float A[N][N];
  array float B[N][N];
  array float x[N];
  array float tmp[N];
  array float y[N];
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] += A[i][j] * x[j];
      y[i] += B[i][j] * x[j];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}
)");
  ASSERT_TRUE(fn.is_ok());
  const auto result = compile(*fn);
  // The epilogue must appear as a residual host nest after the GEMV calls
  // and after tmp/y have been copied back.
  bool saw_gemv = false;
  bool saw_residual_after_gemv = false;
  for (const auto& item : result.cim_program.items) {
    if (std::holds_alternative<exec::CimGemvOp>(item)) saw_gemv = true;
    if (saw_gemv && std::holds_alternative<exec::HostNest>(item)) {
      saw_residual_after_gemv = true;
    }
  }
  EXPECT_TRUE(saw_gemv);
  EXPECT_TRUE(saw_residual_after_gemv);
}

}  // namespace
}  // namespace tdo::core
