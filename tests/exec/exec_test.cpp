// Interpreter tests: functional loop-nest execution (bounds, steps, min
// clamps, accumulation) and host cost-model behaviour (register promotion,
// unroll amortization, cache-stall accounting).
#include <gtest/gtest.h>

#include "exec/interpreter.hpp"
#include "exec/program.hpp"
#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "sim/system.hpp"

namespace tdo::exec {
namespace {

[[nodiscard]] Program program_from(const std::string& source) {
  auto fn = frontend::parse_kernel(source);
  EXPECT_TRUE(fn.is_ok()) << fn.status().to_string();
  return host_only_program(*fn);
}

TEST(InterpreterTest, ExecutesSimpleAssignments) {
  sim::System system;
  Interpreter interp{system, nullptr};
  const Program program = program_from(R"(
kernel k(N = 8) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = 2.0 * A[i] + 1.0;
}
)");
  ASSERT_TRUE(interp.prepare(program).is_ok());
  ASSERT_TRUE(interp.set_array("A", std::vector<float>(8, 3.0f)).is_ok());
  ASSERT_TRUE(interp.run(program).is_ok());
  const auto result = interp.get_array("A");
  for (const float v : *result) EXPECT_FLOAT_EQ(v, 7.0f);
  EXPECT_EQ(interp.statements_executed(), 8u);
}

TEST(InterpreterTest, HandlesStepsAndNonZeroLowerBounds) {
  sim::System system;
  Interpreter interp{system, nullptr};
  const Program program = program_from(R"(
kernel k(N = 10) {
  array float A[N];
  for (i = 2; i < N; i += 3)
    A[i] = 1.0;
}
)");
  ASSERT_TRUE(interp.run(program).is_ok());
  const auto a = *interp.get_array("A");
  for (int i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(a[static_cast<std::size_t>(i)],
                    (i == 2 || i == 5 || i == 8) ? 1.0f : 0.0f)
        << i;
  }
}

TEST(InterpreterTest, MinBoundClampsTailTiles) {
  using namespace ir;  // NOLINT: builder DSL
  Function fn;
  fn.name = "tail";
  fn.arrays.push_back(ArrayDecl{"A", {10}});
  // for (ii = 0; ii < 10; ii += 4) for (i = ii; i < min(ii+4, 10); i++) A[i] = 1
  fn.body.push_back(make_loop(
      "ii", cst(0), Bound::of(cst(10)), 4,
      {make_loop("i", iv("ii"), Bound::min_of(iv("ii") + cst(4), cst(10)), 1,
                 {make_assign(ref("A", {iv("i")}), make_const(1.0))})}));
  ASSERT_TRUE(fn.validate().is_ok());

  sim::System system;
  Interpreter interp{system, nullptr};
  ASSERT_TRUE(interp.run(host_only_program(fn)).is_ok());
  const auto result = interp.get_array("A");
  for (const float v : *result) EXPECT_FLOAT_EQ(v, 1.0f);
  EXPECT_EQ(interp.statements_executed(), 10u);  // not 12: tail clamped
}

TEST(InterpreterTest, ScalarParamsResolve) {
  sim::System system;
  Interpreter interp{system, nullptr};
  const Program program = program_from(R"(
kernel k(N = 4, alpha = 2.5) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = alpha;
}
)");
  ASSERT_TRUE(interp.run(program).is_ok());
  const auto result = interp.get_array("A");
  for (const float v : *result) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(InterpreterTest, RuntimeCallWithoutRuntimeFails) {
  sim::System system;
  Interpreter interp{system, nullptr};
  Program program;
  program.items.push_back(CimInitOp{0});
  const auto status = interp.run(program);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), support::StatusCode::kFailedPrecondition);
}

TEST(InterpreterTest, UnknownArrayInSetArrayFails) {
  sim::System system;
  Interpreter interp{system, nullptr};
  const Program program = program_from(R"(
kernel k(N = 4) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = 1.0;
}
)");
  ASSERT_TRUE(interp.prepare(program).is_ok());
  EXPECT_FALSE(interp.set_array("B", std::vector<float>(4)).is_ok());
  EXPECT_FALSE(interp.set_array("A", std::vector<float>(5)).is_ok());
}

// --- cost model behaviour ---

[[nodiscard]] std::uint64_t run_and_count_insts(const std::string& source,
                                                CostModelParams cost) {
  sim::System system;
  Interpreter interp{system, nullptr, cost};
  const Program program = program_from(source);
  EXPECT_TRUE(interp.run(program).is_ok());
  return system.cpu().instructions();
}

TEST(CostModelTest, AccumulatorPromotionRemovesLhsTraffic) {
  const std::string reduction = R"(
kernel k(N = 64) {
  array float A[N][N];
  array float y[N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      y[i] += A[i][j] * A[i][j];
}
)";
  CostModelParams with;
  CostModelParams without;
  without.promote_accumulators = false;
  const auto promoted = run_and_count_insts(reduction, with);
  const auto unpromoted = run_and_count_insts(reduction, without);
  // Promotion removes ~2 memory instructions per inner iteration.
  EXPECT_LT(promoted + 64 * 64, unpromoted);
}

TEST(CostModelTest, PromotionDoesNotApplyWhenLhsVariesInnermost) {
  const std::string elementwise = R"(
kernel k(N = 64) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] += 1.0;
}
)";
  CostModelParams with;
  CostModelParams without;
  without.promote_accumulators = false;
  EXPECT_EQ(run_and_count_insts(elementwise, with),
            run_and_count_insts(elementwise, without));
}

TEST(CostModelTest, UnrollFactorAmortizesLoopOverhead) {
  const std::string loop = R"(
kernel k(N = 256) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = 1.0;
}
)";
  CostModelParams u1;
  u1.unroll_factor = 1;
  CostModelParams u4;
  u4.unroll_factor = 4;
  const auto unrolled = run_and_count_insts(loop, u4);
  const auto rolled = run_and_count_insts(loop, u1);
  // 256 iterations x 2 bookkeeping insts x 3/4 saved = 384.
  EXPECT_EQ(rolled - unrolled, 384u);
}

TEST(CostModelTest, CacheStallsDependOnLocality) {
  // Column-major walk over a large array stalls more than row-major.
  const std::string row_major = R"(
kernel k(N = 512) {
  array float A[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = 1.0;
}
)";
  const std::string col_major = R"(
kernel k(N = 512) {
  array float A[N][N];
  for (j = 0; j < N; j++)
    for (i = 0; i < N; i++)
      A[i][j] = 1.0;
}
)";
  auto cycles = [](const std::string& source) {
    sim::System system;
    Interpreter interp{system, nullptr};
    EXPECT_TRUE(interp.run(program_from(source)).is_ok());
    return system.cpu().cycles();
  };
  EXPECT_GT(cycles(col_major), cycles(row_major) * 2);
}

TEST(ProgramTest, HostOnlyProgramCarriesDeclarations) {
  auto fn = frontend::parse_kernel(R"(
kernel k(N = 4, alpha = 1.0) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = alpha;
}
)");
  ASSERT_TRUE(fn.is_ok());
  const Program program = host_only_program(*fn);
  EXPECT_EQ(program.arrays.size(), 1u);
  EXPECT_EQ(program.scalars.size(), 1u);
  ASSERT_EQ(program.items.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<HostNest>(program.items[0]));
}

}  // namespace
}  // namespace tdo::exec
