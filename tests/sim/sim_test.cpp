// Unit tests for the simulation substrate: event queue, memory, MMU,
// caches, bus and host CPU cost model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/bus.hpp"
#include "sim/cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/host_cpu.hpp"
#include "sim/mmu.hpp"
#include "sim/sim_memory.hpp"
#include "sim/system.hpp"

namespace tdo::sim {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(30, "c", [&] { order.push_back(3); });
  queue.schedule_at(10, "a", [&] { order.push_back(1); });
  queue.schedule_at(20, "b", [&] { order.push_back(2); });
  EXPECT_EQ(queue.run_to_completion(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(5, "a", [&] { order.push_back(1); });
  queue.schedule_at(5, "b", [&] { order.push_back(2); });
  queue.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1, "outer", [&] {
    ++fired;
    queue.schedule_after(support::Duration::from_ps(4), "inner",
                         [&] { ++fired; });
  });
  EXPECT_EQ(queue.run_to_completion(), 5u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtLimit) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, "a", [&] { ++fired; });
  queue.schedule_at(20, "b", [&] { ++fired; });
  EXPECT_EQ(queue.run_until(15), 15u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(SimMemoryTest, ReadsZeroBeforeFirstWrite) {
  SimMemory memory{1 << 20};
  EXPECT_EQ(memory.read_scalar<std::uint32_t>(0x1234), 0u);
  EXPECT_EQ(memory.resident_pages(), 0u);
}

TEST(SimMemoryTest, RoundTripsAcrossPageBoundary) {
  SimMemory memory{1 << 20};
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  memory.write(kPageSize - 4, data);
  std::vector<std::uint8_t> out(8);
  memory.read(kPageSize - 4, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(memory.resident_pages(), 2u);
}

TEST(SimMemoryTest, ScalarTypedAccess) {
  SimMemory memory{1 << 20};
  memory.write_scalar<float>(64, 3.25f);
  EXPECT_EQ(memory.read_scalar<float>(64), 3.25f);
  memory.write_scalar<std::uint64_t>(128, 0xdeadbeefcafeull);
  EXPECT_EQ(memory.read_scalar<std::uint64_t>(128), 0xdeadbeefcafeull);
}

TEST(MmuTest, AllocateTranslateRelease) {
  Mmu mmu{1 << 22, 1 << 20};
  auto va = mmu.allocate(3 * kPageSize);
  ASSERT_TRUE(va.is_ok());
  auto pa = mmu.translate(*va + 5);
  ASSERT_TRUE(pa.is_ok());
  EXPECT_EQ(page_offset(*pa), 5u);
  EXPECT_TRUE(mmu.release(*va, 3 * kPageSize).is_ok());
  EXPECT_FALSE(mmu.translate(*va).is_ok());
}

TEST(MmuTest, CmaRegionIsReservedAtTop) {
  Mmu mmu{1 << 22, 1 << 20};
  EXPECT_EQ(mmu.cma_region().base, (1u << 22) - (1u << 20));
  EXPECT_EQ(mmu.cma_region().size, 1u << 20);
}

TEST(MmuTest, MapPhysicalIsContiguous) {
  Mmu mmu{1 << 22, 1 << 20};
  const PhysAddr pa = mmu.cma_region().base;
  auto va = mmu.map_physical(pa, 4 * kPageSize);
  ASSERT_TRUE(va.is_ok());
  EXPECT_TRUE(mmu.is_contiguous(*va, 4 * kPageSize));
  // Ordinary allocations hand out frames in descending pop order; two
  // separate single-page allocations are not guaranteed contiguous with a
  // multi-page one interleaved.
  auto v1 = mmu.allocate(kPageSize);
  ASSERT_TRUE(v1.is_ok());
  EXPECT_TRUE(mmu.is_contiguous(*v1, kPageSize));  // single page: trivially
}

TEST(MmuTest, TranslateFailsOnUnmapped) {
  Mmu mmu{1 << 22, 1 << 20};
  EXPECT_FALSE(mmu.translate(0xdead0000).is_ok());
}

TEST(MmuTest, AllocationFailsWhenExhausted) {
  Mmu mmu{16 * kPageSize, 4 * kPageSize};  // 12 usable frames
  EXPECT_FALSE(mmu.allocate(13 * kPageSize).is_ok());
  EXPECT_TRUE(mmu.allocate(12 * kPageSize).is_ok());
}

TEST(CacheTest, HitsAfterFirstMiss) {
  Cache cache{CacheParams{.name = "t", .size_bytes = 4096, .line_bytes = 64, .ways = 2}};
  bool dirty = false;
  EXPECT_EQ(cache.access(0x100, false, &dirty), CacheOutcome::kMiss);
  EXPECT_EQ(cache.access(0x100, false, &dirty), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(0x13F, false, &dirty), CacheOutcome::kHit);  // same line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, LruEvictsOldestWay) {
  // 2 ways, 64B lines, 2 sets -> addresses 0, 256, 512 map to set 0.
  Cache cache{CacheParams{.name = "t", .size_bytes = 256, .line_bytes = 64, .ways = 2}};
  bool dirty = false;
  (void)cache.access(0, false, &dirty);
  (void)cache.access(256, false, &dirty);
  (void)cache.access(0, false, &dirty);    // refresh line 0
  (void)cache.access(512, false, &dirty);  // evicts 256
  EXPECT_EQ(cache.access(0, false, &dirty), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(256, false, &dirty), CacheOutcome::kMiss);
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  Cache cache{CacheParams{.name = "t", .size_bytes = 128, .line_bytes = 64, .ways = 1}};
  bool dirty = false;
  (void)cache.access(0, true, &dirty);  // dirty line in set 0
  EXPECT_FALSE(dirty);
  (void)cache.access(128, false, &dirty);  // same set, evicts dirty
  EXPECT_TRUE(dirty);
  EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(CacheTest, FlushAllCountsDirtyLines) {
  Cache cache{CacheParams{.name = "t", .size_bytes = 4096, .line_bytes = 64, .ways = 4}};
  bool dirty = false;
  (void)cache.access(0, true, &dirty);
  (void)cache.access(64, true, &dirty);
  (void)cache.access(128, false, &dirty);
  EXPECT_EQ(cache.flush_all(), 2u);
  // Everything is invalid now.
  EXPECT_EQ(cache.access(0, false, &dirty), CacheOutcome::kMiss);
}

TEST(CacheTest, FlushRangeOnlyTouchesRange) {
  Cache cache{CacheParams{.name = "t", .size_bytes = 4096, .line_bytes = 64, .ways = 4}};
  bool dirty = false;
  (void)cache.access(0, true, &dirty);
  (void)cache.access(1024, true, &dirty);
  EXPECT_EQ(cache.flush_range(0, 64), 1u);
  EXPECT_EQ(cache.access(1024, false, &dirty), CacheOutcome::kHit);
}

TEST(HostCpuTest, ChargesInstructionEnergy) {
  SystemParams params;
  System system{params};
  system.cpu().charge_instructions(1000);
  EXPECT_EQ(system.cpu().instructions(), 1000u);
  EXPECT_NEAR(system.cpu().energy().nanojoules(), 128.0, 1e-9);
}

TEST(HostCpuTest, MemoryStallsRaiseCycles) {
  System system;
  const std::uint64_t before = system.cpu().cycles();
  system.cpu().load(0x10000);  // cold miss -> L2 + DRAM stall
  const std::uint64_t cold = system.cpu().cycles() - before;
  const std::uint64_t before2 = system.cpu().cycles();
  system.cpu().load(0x10000);  // now hot
  const std::uint64_t hot = system.cpu().cycles() - before2;
  EXPECT_GT(cold, hot + 50);
}

TEST(HostCpuTest, SpinUntilReachesTargetExactly) {
  System system;
  system.cpu().charge_instructions(100);
  const Tick target = system.cpu().elapsed().ticks() + 1'000'000;  // +1us
  (void)system.cpu().spin_until(target);
  EXPECT_GE(system.cpu().elapsed().ticks(), target);
  EXPECT_LT(system.cpu().elapsed().ticks(), target + 2000);
}

TEST(BusTest, RoutesDramAndRejectsUnmapped) {
  System system;
  ASSERT_TRUE(system.bus().write_scalar<std::uint32_t>(0x40, 77).is_ok());
  auto value = system.bus().read_scalar<std::uint32_t>(0x40);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(*value, 77u);
  EXPECT_FALSE(system.bus().read_scalar<std::uint32_t>(0x50'0000'0000ull).is_ok());
}

TEST(SystemTest, GlobalTimeTracksBothClocks) {
  System system;
  system.cpu().charge_cycles(1200);  // 1 us at 1.2 GHz
  EXPECT_NEAR(system.global_time().microseconds(), 1.0, 0.01);
  system.sync_event_clock_to_host();
  system.events().schedule_after(support::Duration::from_us(5), "x", [] {});
  system.events().run_to_completion();
  EXPECT_NEAR(system.global_time().microseconds(), 6.0, 0.02);
}

}  // namespace
}  // namespace tdo::sim
