// Front-end tests: lexing, parsing, affine checking, error reporting, and
// printer round-trip sanity.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"

namespace tdo::frontend {
namespace {

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = tokenize("for (i = 0; i < 10; i++) C[i] += 2.5 * x;");
  ASSERT_TRUE(tokens.is_ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFor);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, HandlesCommentsAndFloatForms) {
  auto tokens = tokenize("1.5 2e3 7f // comment\n42");
  ASSERT_TRUE(tokens.is_ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 2000.0);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloatLit);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIntLit);
  EXPECT_EQ((*tokens)[3].int_value, 42);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(tokenize("a @ b").is_ok());
}

TEST(ParserTest, ParsesMinimalKernel) {
  auto fn = parse_kernel(R"(
kernel copy(N = 4) {
  array float A[N];
  array float B[N];
  for (i = 0; i < N; i++)
    B[i] = A[i];
}
)");
  ASSERT_TRUE(fn.is_ok()) << fn.status().to_string();
  EXPECT_EQ(fn->name, "copy");
  ASSERT_EQ(fn->arrays.size(), 2u);
  EXPECT_EQ(fn->arrays[0].dims[0], 4);
  ASSERT_EQ(fn->body.size(), 1u);
  EXPECT_TRUE(fn->body[0].is_loop());
}

TEST(ParserTest, IntParamsFoldIntoBoundsAndDims) {
  auto fn = parse_kernel(R"(
kernel k(N = 8, M = 3) {
  array float A[N + M][2 * N];
  for (i = 0; i < N - 1; i++)
    A[i][i + M] = 1.0;
}
)");
  ASSERT_TRUE(fn.is_ok()) << fn.status().to_string();
  EXPECT_EQ(fn->arrays[0].dims[0], 11);
  EXPECT_EQ(fn->arrays[0].dims[1], 16);
  const auto& loop = fn->body[0].loop();
  EXPECT_EQ(loop.upper.expr.constant_term(), 7);
}

TEST(ParserTest, FloatParamsBecomeScalars) {
  auto fn = parse_kernel(R"(
kernel k(alpha = 1.25, N = 2) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = alpha * A[i];
}
)");
  ASSERT_TRUE(fn.is_ok());
  ASSERT_EQ(fn->scalars.size(), 1u);
  EXPECT_DOUBLE_EQ(fn->scalars[0].value, 1.25);
}

TEST(ParserTest, AffineSubscriptsWithConstantsParse) {
  auto fn = parse_kernel(R"(
kernel k(N = 8) {
  array float A[N][N];
  array float B[N][N];
  for (i = 0; i < N - 2; i++)
    for (j = 0; j < N - 2; j++)
      B[i][j] = A[i + 2][2 * j + 1];
}
)");
  ASSERT_TRUE(fn.is_ok()) << fn.status().to_string();
}

TEST(ParserTest, NonAffineReadPoisonsLoad) {
  auto fn = parse_kernel(R"(
kernel k(N = 8) {
  array float A[N][N];
  array float B[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      B[i][j] = A[i * j][j];
}
)");
  ASSERT_TRUE(fn.is_ok()) << fn.status().to_string();
  bool poisoned = false;
  ir::for_each_stmt(fn->body, [&](const ir::Stmt& stmt) {
    poisoned = poisoned || ir::has_non_affine(stmt.rhs);
  });
  EXPECT_TRUE(poisoned);
}

TEST(ParserTest, NonAffineWriteIsHardError) {
  auto fn = parse_kernel(R"(
kernel k(N = 8) {
  array float A[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i * j][j] = 1.0;
}
)");
  EXPECT_FALSE(fn.is_ok());
}

TEST(ParserTest, RejectsUndeclaredSymbols) {
  EXPECT_FALSE(parse_kernel(R"(
kernel k(N = 4) {
  array float A[N];
  for (i = 0; i < N; i++)
    A[i] = missing;
}
)").is_ok());
}

TEST(ParserTest, RejectsShadowedInductionVariable) {
  EXPECT_FALSE(parse_kernel(R"(
kernel k(N = 4) {
  array float A[N][N];
  for (i = 0; i < N; i++)
    for (i = 0; i < N; i++)
      A[i][i] = 1.0;
}
)").is_ok());
}

TEST(ParserTest, RejectsMismatchedSubscriptArity) {
  EXPECT_FALSE(parse_kernel(R"(
kernel k(N = 4) {
  array float A[N][N];
  for (i = 0; i < N; i++)
    A[i] = 1.0;
}
)").is_ok());
}

TEST(ParserTest, StepsAndIncrementFormsParse) {
  auto fn = parse_kernel(R"(
kernel k(N = 16) {
  array float A[N];
  for (i = 0; i < N; i += 4)
    A[i] = 1.0;
  for (j = 0; j < N; ++j)
    A[j] = 2.0;
}
)");
  ASSERT_TRUE(fn.is_ok()) << fn.status().to_string();
  EXPECT_EQ(fn->body[0].loop().step, 4);
  EXPECT_EQ(fn->body[1].loop().step, 1);
}

TEST(PrinterTest, RendersReadableSource) {
  auto fn = parse_kernel(R"(
kernel k(N = 4, alpha = 2.0) {
  array float A[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] += alpha * A[i][j];
}
)");
  ASSERT_TRUE(fn.is_ok());
  const std::string out = ir::to_source(*fn);
  EXPECT_NE(out.find("for (int i = 0; i < 4; i++)"), std::string::npos);
  EXPECT_NE(out.find("A[i][j] += alpha * A[i][j];"), std::string::npos);
}

}  // namespace
}  // namespace tdo::frontend
